#include "prob/cdf_poly.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "combinat/binomial.hpp"

namespace ddm::prob {

using poly::QPoly;
using util::Rational;

poly::PiecewisePolynomial sum_uniform_cdf_poly(std::span<const Rational> pi) {
  const std::size_t m = pi.size();
  if (m == 0 || m > 10) throw std::invalid_argument("sum_uniform_cdf_poly: need 1 <= m <= 10");
  for (const Rational& p : pi) {
    if (p.signum() <= 0) throw std::invalid_argument("sum_uniform_cdf_poly: ranges must be > 0");
  }

  // All subset sums, with parity-weighted polynomial contributions
  //   (−1)^{|I|} (t − s_I)^m  active for t > s_I  (Lemma 2.4).
  struct SubsetTerm {
    Rational sum;
    int sign;
  };
  std::vector<SubsetTerm> terms;
  terms.reserve(std::size_t{1} << m);
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    Rational sum{0};
    for (std::size_t l = 0; l < m; ++l) {
      if (mask & (std::uint64_t{1} << l)) sum += pi[l];
    }
    terms.push_back(SubsetTerm{std::move(sum), __builtin_popcountll(mask) % 2 == 0 ? 1 : -1});
  }

  std::vector<Rational> breakpoints;
  breakpoints.reserve(terms.size());
  for (const SubsetTerm& term : terms) breakpoints.push_back(term.sum);
  std::sort(breakpoints.begin(), breakpoints.end());
  breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end()), breakpoints.end());

  Rational normalizer = combinat::inverse_factorial(static_cast<std::uint32_t>(m));
  for (const Rational& p : pi) normalizer /= p;

  std::vector<poly::Piece> pieces;
  pieces.reserve(breakpoints.size() - 1);
  for (std::size_t i = 0; i + 1 < breakpoints.size(); ++i) {
    const Rational& lo = breakpoints[i];
    const Rational& hi = breakpoints[i + 1];
    QPoly piece_poly;
    for (const SubsetTerm& term : terms) {
      if (term.sum > lo) continue;  // not yet active on (lo, hi)
      QPoly contribution =
          poly::binomial_power(-term.sum, Rational{1}, static_cast<std::uint32_t>(m));
      if (term.sign < 0) {
        piece_poly -= contribution;
      } else {
        piece_poly += contribution;
      }
    }
    piece_poly *= normalizer;
    pieces.push_back(poly::Piece{lo, hi, std::move(piece_poly)});
  }
  return poly::PiecewisePolynomial{std::move(pieces)};
}

Rational expected_excess(std::span<const Rational> pi, const Rational& t) {
  const std::size_t m = pi.size();
  if (m == 0) return Rational{0};
  Rational support{0};
  Rational mean{0};
  for (const Rational& p : pi) {
    if (p.signum() <= 0) throw std::invalid_argument("expected_excess: ranges must be > 0");
    support += p;
    mean += p * Rational{1, 2};
  }
  if (t >= support) return Rational{0};
  if (t.signum() <= 0) return mean - t;
  if (m > 10) throw std::invalid_argument("expected_excess: too many variables");

  // E[(X − t)^+] = ∫_t^support (1 − F(x)) dx, exactly.
  const poly::PiecewisePolynomial cdf = sum_uniform_cdf_poly(pi);
  const Rational total_width = support - t;
  return total_width - cdf.integral(t, support);
}

}  // namespace ddm::prob
