#include "prob/empirical.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ddm::prob {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : samples_(std::move(samples)) {
  if (samples_.empty()) throw std::invalid_argument("EmpiricalCdf: empty sample");
  std::sort(samples_.begin(), samples_.end());
}

double EmpiricalCdf::operator()(double x) const {
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double EmpiricalCdf::ks_distance(const std::function<double(double)>& reference_cdf) const {
  const double n = static_cast<double>(samples_.size());
  double sup = 0.0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const double f = reference_cdf(samples_[i]);
    // F_n jumps from i/n to (i+1)/n at samples_[i]; check both sides.
    sup = std::max(sup, std::abs(static_cast<double>(i + 1) / n - f));
    sup = std::max(sup, std::abs(f - static_cast<double>(i) / n));
  }
  return sup;
}

double EmpiricalCdf::ks_critical_value(double alpha) const {
  // c(alpha) = sqrt(-ln(alpha/2) / 2), asymptotic one-sample critical value.
  const double c = std::sqrt(-std::log(alpha / 2.0) / 2.0);
  return c / std::sqrt(static_cast<double>(samples_.size()));
}

}  // namespace ddm::prob
