// volume.hpp — exact volumes of the paper's polytopes (Section 2.1).
//
// The cornerstone of the combinatorial framework is Proposition 2.2: an
// inclusion-exclusion formula for the volume of
//   ΣΠ^m(σ, π) = Σ^m(σ) ∩ Π^m(π),
// the intersection of the orthogonal simplex { x >= 0 : Σ x_l/σ_l <= 1 }
// with the box [0,π_1] × ... × [0,π_m]. Every probability in the paper
// reduces to a ratio of such volumes.
#pragma once

#include <span>
#include <vector>

#include "util/rational.hpp"

namespace ddm::geom {

/// Lemma 2.1(1): Vol(Σ^m(σ)) = (1/m!) · Π σ_l.
/// Requires every σ_l > 0 (throws std::invalid_argument).
[[nodiscard]] util::Rational simplex_volume(std::span<const util::Rational> sigma);

/// Lemma 2.1(2): Vol(Π^m(π)) = Π π_l. Requires every π_l > 0.
[[nodiscard]] util::Rational box_volume(std::span<const util::Rational> pi);

/// Lemma 2.3: the volume of the "corner" simplex
///   { x >= 0 : Σ x_l/σ_l <= 1  and  x_l >= π_l for l in I },
/// equal to Vol(Σ^m(σ)) · (1 − Σ_{l∈I} π_l/σ_l)^m when that sum is < 1,
/// and 0 otherwise. `in_subset[l]` marks membership of l in I.
[[nodiscard]] util::Rational corner_simplex_volume(std::span<const util::Rational> sigma,
                                                   std::span<const util::Rational> pi,
                                                   const std::vector<bool>& in_subset);

/// Proposition 2.2: Vol(ΣΠ^m(σ, π)) by inclusion-exclusion over subsets
/// (exponential in m; exact). Requires sigma.size() == pi.size() >= 1 and all
/// sides positive.
[[nodiscard]] util::Rational simplex_box_volume(std::span<const util::Rational> sigma,
                                                std::span<const util::Rational> pi);

/// Floating-point version of Proposition 2.2 for large m / fast sweeps.
[[nodiscard]] double simplex_box_volume_double(std::span<const double> sigma,
                                               std::span<const double> pi);

}  // namespace ddm::geom
