// volume.hpp — exact volumes of the paper's polytopes (Section 2.1).
//
// The cornerstone of the combinatorial framework is Proposition 2.2: an
// inclusion-exclusion formula for the volume of
//   ΣΠ^m(σ, π) = Σ^m(σ) ∩ Π^m(π),
// the intersection of the orthogonal simplex { x >= 0 : Σ x_l/σ_l <= 1 }
// with the box [0,π_1] × ... × [0,π_m]. Every probability in the paper
// reduces to a ratio of such volumes.
#pragma once

#include <span>
#include <vector>

#include "util/certify.hpp"
#include "util/rational.hpp"

namespace ddm::geom {

/// Lemma 2.1(1): Vol(Σ^m(σ)) = (1/m!) · Π σ_l.
/// Requires every σ_l > 0 (throws std::invalid_argument).
[[nodiscard]] util::Rational simplex_volume(std::span<const util::Rational> sigma);

/// Lemma 2.1(2): Vol(Π^m(π)) = Π π_l. Requires every π_l > 0.
[[nodiscard]] util::Rational box_volume(std::span<const util::Rational> pi);

/// Lemma 2.3: the volume of the "corner" simplex
///   { x >= 0 : Σ x_l/σ_l <= 1  and  x_l >= π_l for l in I },
/// equal to Vol(Σ^m(σ)) · (1 − Σ_{l∈I} π_l/σ_l)^m when that sum is < 1,
/// and 0 otherwise. `in_subset[l]` marks membership of l in I.
[[nodiscard]] util::Rational corner_simplex_volume(std::span<const util::Rational> sigma,
                                                   std::span<const util::Rational> pi,
                                                   const std::vector<bool>& in_subset);

/// Proposition 2.2: Vol(ΣΠ^m(σ, π)) by inclusion-exclusion over subsets
/// (exponential in m; exact). Requires sigma.size() == pi.size() >= 1 and all
/// sides positive.
[[nodiscard]] util::Rational simplex_box_volume(std::span<const util::Rational> sigma,
                                                std::span<const util::Rational> pi);

/// Floating-point version of Proposition 2.2 for large m / fast sweeps.
/// Throws ddm::NumericError when an intermediate (the Π σ_l prefactor or a
/// subset term) leaves the finite double range instead of returning inf/NaN.
[[nodiscard]] double simplex_box_volume_double(std::span<const double> sigma,
                                               std::span<const double> pi);

/// Certified Proposition 2.2: returns a rigorous enclosure of
/// Vol(ΣΠ^m(σ, π)), escalating compensated double → dyadic interval → exact
/// rational per `policy` (util/certify.hpp). Tier costs: double/interval
/// O(2^m) for m <= 62, exact O(2^m) rational for m <= 30 (above that the
/// exact tier reports NumericError and the ladder keeps the best interval
/// enclosure).
[[nodiscard]] ddm::CertifiedValue certified_simplex_box_volume(
    std::span<const util::Rational> sigma, std::span<const util::Rational> pi,
    const ddm::EvalPolicy& policy = {});

}  // namespace ddm::geom
