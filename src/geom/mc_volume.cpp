#include "geom/mc_volume.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace ddm::geom {

VolumeEstimate estimate_volume(const Polytope& polytope, std::span<const double> bounds,
                               std::uint64_t samples, prob::Rng& rng) {
  if (bounds.size() != polytope.dimension()) {
    throw std::invalid_argument("estimate_volume: bounds dimension mismatch");
  }
  if (samples == 0) throw std::invalid_argument("estimate_volume: need at least one sample");
  double box_volume = 1.0;
  for (const double b : bounds) {
    if (b <= 0.0) throw std::invalid_argument("estimate_volume: bounds must be > 0");
    box_volume *= b;
  }
  std::vector<double> point(polytope.dimension());
  std::uint64_t hits = 0;
  for (std::uint64_t s = 0; s < samples; ++s) {
    for (std::size_t i = 0; i < point.size(); ++i) point[i] = rng.uniform(0.0, bounds[i]);
    if (polytope.contains(point)) ++hits;
  }
  const double p = static_cast<double>(hits) / static_cast<double>(samples);
  VolumeEstimate estimate;
  estimate.volume = p * box_volume;
  estimate.standard_error =
      box_volume * std::sqrt(p * (1.0 - p) / static_cast<double>(samples));
  estimate.samples = samples;
  estimate.hits = hits;
  return estimate;
}

}  // namespace ddm::geom
