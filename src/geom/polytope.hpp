// polytope.hpp — half-space representation of the paper's polytopes.
//
// A polyhedron is the solution set of finitely many linear inequalities
// (Section 2.1); a bounded one is a polytope. The H-representation here is
// used for Monte Carlo membership tests that cross-validate the exact
// inclusion-exclusion volumes of Proposition 2.2, and for constructing the
// polytopes behind Lemmas 2.3/2.4 programmatically.
#pragma once

#include <span>
#include <vector>

namespace ddm::geom {

/// One inequality  a · x <= b.
struct Halfspace {
  std::vector<double> normal;
  double offset = 0.0;
};

/// Intersection of half-spaces in fixed dimension.
class Polytope {
 public:
  explicit Polytope(std::size_t dimension) : dimension_(dimension) {}

  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }
  [[nodiscard]] const std::vector<Halfspace>& halfspaces() const noexcept { return halfspaces_; }

  /// Add a·x <= b; throws std::invalid_argument on dimension mismatch.
  void add_halfspace(std::vector<double> normal, double offset);
  /// Add x_i >= 0 for every coordinate.
  void add_nonnegativity();
  /// Add x_i <= bound_i for every coordinate.
  void add_upper_bounds(std::span<const double> bounds);

  /// True iff the point satisfies all inequalities (within tolerance eps).
  [[nodiscard]] bool contains(std::span<const double> point, double eps = 0.0) const;

  // -- factory helpers for the paper's shapes --------------------------------

  /// Σ^m(σ): { x >= 0 : Σ x_l / σ_l <= 1 }  (Lemma 2.1(1)).
  [[nodiscard]] static Polytope simplex(std::span<const double> sigma);
  /// Π^m(π): [0, π_1] × ... × [0, π_m]  (Lemma 2.1(2)).
  [[nodiscard]] static Polytope box(std::span<const double> pi);
  /// ΣΠ^m(σ, π) = Σ^m(σ) ∩ Π^m(π)  (Proposition 2.2).
  [[nodiscard]] static Polytope simplex_box(std::span<const double> sigma,
                                            std::span<const double> pi);
  /// Lemma 2.3 corner: { x >= 0 : Σ x_l/σ_l <= 1, x_l >= π_l for l in I }.
  [[nodiscard]] static Polytope corner_simplex(std::span<const double> sigma,
                                               std::span<const double> pi,
                                               const std::vector<bool>& in_subset);

 private:
  std::size_t dimension_;
  std::vector<Halfspace> halfspaces_;
};

}  // namespace ddm::geom
