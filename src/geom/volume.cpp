#include "geom/volume.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "combinat/binomial.hpp"

namespace ddm::geom {

using util::Rational;

namespace {

void check_positive(std::span<const Rational> sides, const char* what) {
  if (sides.empty()) throw std::invalid_argument(std::string(what) + ": dimension must be >= 1");
  for (const Rational& s : sides) {
    if (s.signum() <= 0) throw std::invalid_argument(std::string(what) + ": sides must be > 0");
  }
}

}  // namespace

Rational simplex_volume(std::span<const Rational> sigma) {
  check_positive(sigma, "simplex_volume");
  Rational product{1};
  for (const Rational& s : sigma) product *= s;
  return product * combinat::inverse_factorial(static_cast<std::uint32_t>(sigma.size()));
}

Rational box_volume(std::span<const Rational> pi) {
  check_positive(pi, "box_volume");
  Rational product{1};
  for (const Rational& p : pi) product *= p;
  return product;
}

Rational corner_simplex_volume(std::span<const Rational> sigma, std::span<const Rational> pi,
                               const std::vector<bool>& in_subset) {
  check_positive(sigma, "corner_simplex_volume");
  if (sigma.size() != pi.size() || sigma.size() != in_subset.size()) {
    throw std::invalid_argument("corner_simplex_volume: size mismatch");
  }
  Rational ratio_sum{0};
  for (std::size_t l = 0; l < sigma.size(); ++l) {
    if (in_subset[l]) ratio_sum += pi[l] / sigma[l];
  }
  if (ratio_sum >= Rational{1}) return Rational{0};
  const Rational scale = Rational{1} - ratio_sum;
  return simplex_volume(sigma) * scale.pow(static_cast<std::int64_t>(sigma.size()));
}

Rational simplex_box_volume(std::span<const Rational> sigma, std::span<const Rational> pi) {
  check_positive(sigma, "simplex_box_volume");
  check_positive(pi, "simplex_box_volume");
  if (sigma.size() != pi.size()) {
    throw std::invalid_argument("simplex_box_volume: size mismatch");
  }
  const std::size_t m = sigma.size();
  if (m > 30) {
    throw std::invalid_argument("simplex_box_volume: exact version limited to m <= 30");
  }
  // Precompute the ratios π_l / σ_l once.
  std::vector<Rational> ratio(m);
  for (std::size_t l = 0; l < m; ++l) ratio[l] = pi[l] / sigma[l];

  // Σ over subsets I of (−1)^{|I|} (1 − Σ_{l∈I} π_l/σ_l)^m, guarded by the
  // feasibility condition Σ_{l∈I} π_l/σ_l < 1 (Proposition 2.2).
  Rational sum{0};
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    Rational ratio_sum{0};
    for (std::size_t l = 0; l < m; ++l) {
      if (mask & (std::uint64_t{1} << l)) ratio_sum += ratio[l];
    }
    if (ratio_sum >= Rational{1}) continue;
    const Rational term = (Rational{1} - ratio_sum).pow(static_cast<std::int64_t>(m));
    if (__builtin_popcountll(mask) % 2 == 0) {
      sum += term;
    } else {
      sum -= term;
    }
  }
  return simplex_volume(sigma) * sum;
}

double simplex_box_volume_double(std::span<const double> sigma, std::span<const double> pi) {
  if (sigma.empty() || sigma.size() != pi.size()) {
    throw std::invalid_argument("simplex_box_volume_double: bad dimensions");
  }
  const std::size_t m = sigma.size();
  if (m > 62) {
    throw std::invalid_argument("simplex_box_volume_double: m too large for subset masks");
  }
  std::vector<double> ratio(m);
  double side_product = 1.0;
  for (std::size_t l = 0; l < m; ++l) {
    if (sigma[l] <= 0.0 || pi[l] <= 0.0) {
      throw std::invalid_argument("simplex_box_volume_double: sides must be > 0");
    }
    ratio[l] = pi[l] / sigma[l];
    side_product *= sigma[l];
  }
  double sum = 0.0;
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    double ratio_sum = 0.0;
    for (std::size_t l = 0; l < m; ++l) {
      if (mask & (std::uint64_t{1} << l)) ratio_sum += ratio[l];
    }
    if (ratio_sum >= 1.0) continue;
    const double term = std::pow(1.0 - ratio_sum, static_cast<double>(m));
    sum += (__builtin_popcountll(mask) % 2 == 0) ? term : -term;
  }
  return side_product * combinat::inverse_factorial_double(static_cast<std::uint32_t>(m)) * sum;
}

}  // namespace ddm::geom
