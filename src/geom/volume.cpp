#include "geom/volume.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "combinat/binomial.hpp"
#include "combinat/subsets.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "util/kahan.hpp"
#include "util/status.hpp"

namespace ddm::geom {

using util::Rational;

namespace {

void check_positive(std::span<const Rational> sides, const char* what) {
  if (sides.empty()) throw std::invalid_argument(std::string(what) + ": dimension must be >= 1");
  for (const Rational& s : sides) {
    if (s.signum() <= 0) throw std::invalid_argument(std::string(what) + ": sides must be > 0");
  }
}

}  // namespace

Rational simplex_volume(std::span<const Rational> sigma) {
  check_positive(sigma, "simplex_volume");
  Rational product{1};
  for (const Rational& s : sigma) product *= s;
  return product * combinat::inverse_factorial(static_cast<std::uint32_t>(sigma.size()));
}

Rational box_volume(std::span<const Rational> pi) {
  check_positive(pi, "box_volume");
  Rational product{1};
  for (const Rational& p : pi) product *= p;
  return product;
}

Rational corner_simplex_volume(std::span<const Rational> sigma, std::span<const Rational> pi,
                               const std::vector<bool>& in_subset) {
  check_positive(sigma, "corner_simplex_volume");
  if (sigma.size() != pi.size() || sigma.size() != in_subset.size()) {
    throw std::invalid_argument("corner_simplex_volume: size mismatch");
  }
  Rational ratio_sum{0};
  for (std::size_t l = 0; l < sigma.size(); ++l) {
    if (in_subset[l]) ratio_sum += pi[l] / sigma[l];
  }
  if (ratio_sum >= Rational{1}) return Rational{0};
  const Rational scale = Rational{1} - ratio_sum;
  return simplex_volume(sigma) * scale.pow(static_cast<std::int64_t>(sigma.size()));
}

Rational simplex_box_volume(std::span<const Rational> sigma, std::span<const Rational> pi) {
  check_positive(sigma, "simplex_box_volume");
  check_positive(pi, "simplex_box_volume");
  if (sigma.size() != pi.size()) {
    throw std::invalid_argument("simplex_box_volume: size mismatch");
  }
  const std::size_t m = sigma.size();
  if (m > 30) {
    throw std::invalid_argument("simplex_box_volume: exact version limited to m <= 30");
  }
  // Precompute the ratios π_l / σ_l once.
  std::vector<Rational> ratio(m);
  for (std::size_t l = 0; l < m; ++l) ratio[l] = pi[l] / sigma[l];

  // Σ over subsets I of (−1)^{|I|} (1 − Σ_{l∈I} π_l/σ_l)^m, guarded by the
  // feasibility condition Σ_{l∈I} π_l/σ_l < 1 (Proposition 2.2). Subsets are
  // visited in reflected Gray-code order so the running Σ_{l∈I} π_l/σ_l needs
  // exactly one add or subtract per subset; the sign (−1)^|I| alternates with
  // the step index (docs/performance.md).
  Rational remainder{1};  // 1 − Σ_{l∈I} ratio_l for the current subset
  std::uint64_t mask = 0;
  Rational sum = remainder.pow(static_cast<std::int64_t>(m));  // empty subset
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t i = 1; i < limit; ++i) {
    const std::uint32_t j = combinat::gray_flip_bit(i);
    const std::uint64_t bit = std::uint64_t{1} << j;
    mask ^= bit;
    if (mask & bit) {
      remainder -= ratio[j];
    } else {
      remainder += ratio[j];
    }
    if (remainder.signum() <= 0) continue;
    const Rational term = remainder.pow(static_cast<std::int64_t>(m));
    if (combinat::gray_parity_odd(i)) {
      sum -= term;
    } else {
      sum += term;
    }
  }
  return simplex_volume(sigma) * sum;
}

double simplex_box_volume_double(std::span<const double> sigma, std::span<const double> pi) {
  if (sigma.empty() || sigma.size() != pi.size()) {
    throw std::invalid_argument("simplex_box_volume_double: bad dimensions");
  }
  const std::size_t m = sigma.size();
  if (m > 62) {
    throw std::invalid_argument("simplex_box_volume_double: m too large for subset masks");
  }
  std::vector<double> ratio(m);
  double side_product = 1.0;
  for (std::size_t l = 0; l < m; ++l) {
    if (sigma[l] <= 0.0 || pi[l] <= 0.0) {
      throw std::invalid_argument("simplex_box_volume_double: sides must be > 0");
    }
    ratio[l] = require_finite(pi[l] / sigma[l], "simplex_box_volume_double: ratio pi/sigma");
    side_product = require_finite(side_product * sigma[l],
                                  "simplex_box_volume_double: side product");
  }
  DDM_SPAN("kernel.volume_ie", {{"m", static_cast<std::int64_t>(m)}});
  {
    static const obs::Counter subsets = obs::counter("kernel.subsets_visited");
    if (obs::metrics_enabled() && m < 63) subsets.add(std::uint64_t{1} << m);
  }
  // Same Gray-code walk as the exact version: one add per subset plus a
  // binary-exponentiation power instead of std::pow. Both the running ratio
  // sum and the term accumulator carry Kahan compensation so the incremental
  // updates stay within a few ulps of fresh recomputation over all 2^m steps.
  const auto mm = static_cast<std::uint32_t>(m);
  util::KahanSum ratio_sum;
  std::uint64_t mask = 0;
  util::KahanSum sum{1.0};  // empty subset: (1 − 0)^m
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t i = 1; i < limit; ++i) {
    const std::uint32_t j = combinat::gray_flip_bit(i);
    const std::uint64_t bit = std::uint64_t{1} << j;
    mask ^= bit;
    ratio_sum.add((mask & bit) ? ratio[j] : -ratio[j]);
    const double rs = ratio_sum.get();
    if (rs >= 1.0) continue;
    const double term = combinat::pow_uint(1.0 - rs, mm);
    sum.add(combinat::gray_parity_odd(i) ? -term : term);
  }
  if (obs::metrics_enabled()) {
    static const obs::Histogram compensation = obs::histogram("kernel.kahan_compensation");
    compensation.record(std::abs(sum.compensation));
  }
  return require_finite(side_product * combinat::inverse_factorial_double(mm) * sum.get(),
                        "simplex_box_volume_double: result");
}

namespace {

constexpr double kU = 0x1p-53;  // unit roundoff of IEEE double

double pow_mults(std::uint32_t e) { return 2.0 * static_cast<double>(std::bit_width(e)); }

// Tier 0: the Gray-code double kernel above with a running error bound. The
// compensated running ratio sum carries the Neumaier bound 2u·Σ|increments|
// plus u·Σ|ratio| for the rounding already inside each ratio; a subset whose
// 1 − Σ ratio lands within the bound of zero has an uncertain feasibility
// indicator, so its possible term is charged to the error instead.
util::TrackedDouble simplex_box_volume_t0(std::span<const double> sigma,
                                          std::span<const double> pi) {
  const std::size_t m = sigma.size();
  const auto mm = static_cast<std::uint32_t>(m);
  std::vector<double> ratio(m);
  double side_product = 1.0;
  for (std::size_t l = 0; l < m; ++l) {
    ratio[l] = pi[l] / sigma[l];
    side_product *= sigma[l];
  }
  util::KahanSum ratio_sum;
  double abs_inc = 0.0;
  util::KahanSum sum{1.0};  // empty subset: (1 − 0)^m, exact
  double abs_sum = 1.0;
  double err = 0.0;
  std::uint64_t mask = 0;
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t i = 1; i < limit; ++i) {
    const std::uint32_t j = combinat::gray_flip_bit(i);
    const std::uint64_t bit = std::uint64_t{1} << j;
    mask ^= bit;
    ratio_sum.add((mask & bit) ? ratio[j] : -ratio[j]);
    abs_inc += ratio[j];
    const double rs = ratio_sum.get();
    const double base = 1.0 - rs;
    const double err_base = 3.0 * kU * abs_inc + kU * std::abs(base);
    if (base <= err_base) {
      if (base > -err_base) err += combinat::pow_uint(std::abs(base) + err_base, mm);
      continue;
    }
    const double p1 = combinat::pow_uint(base, mm - 1);
    const double term = p1 * base;
    err += static_cast<double>(m) * p1 * err_base + (pow_mults(mm) + 1.0) * kU * term;
    sum.add(combinat::gray_parity_odd(i) ? -term : term);
    abs_sum += term;
  }
  const double prefactor = side_product * combinat::inverse_factorial_double(mm);
  const double value = prefactor * sum.get();
  const double error = std::abs(prefactor) * (err + 2.0 * kU * abs_sum) +
                       (static_cast<double>(m) + 3.0) * kU * std::abs(value);
  return {value, error};
}

// Tier 1: the same Gray walk with an exact rational running ratio sum (exact
// feasibility indicators) and dyadic-interval term accumulation.
util::RationalInterval simplex_box_volume_i(std::span<const Rational> sigma,
                                            std::span<const Rational> pi, unsigned bits) {
  const std::size_t m = sigma.size();
  const auto mm = static_cast<std::uint32_t>(m);
  std::vector<Rational> ratio(m);
  for (std::size_t l = 0; l < m; ++l) ratio[l] = pi[l] / sigma[l];
  Rational remainder{1};
  util::RationalInterval sum{Rational{1}};  // empty subset: exact 1
  std::uint64_t mask = 0;
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t i = 1; i < limit; ++i) {
    const std::uint32_t j = combinat::gray_flip_bit(i);
    const std::uint64_t bit = std::uint64_t{1} << j;
    mask ^= bit;
    if (mask & bit) {
      remainder -= ratio[j];
    } else {
      remainder += ratio[j];
    }
    if (remainder.signum() <= 0) continue;
    const util::RationalInterval term = util::pow_outward(util::RationalInterval{remainder}, mm, bits);
    sum = util::outward_round(combinat::gray_parity_odd(i) ? sum - term : sum + term, bits);
  }
  return util::outward_round(sum * util::RationalInterval{simplex_volume(sigma)}, bits);
}

}  // namespace

ddm::CertifiedValue certified_simplex_box_volume(std::span<const Rational> sigma,
                                                 std::span<const Rational> pi,
                                                 const ddm::EvalPolicy& policy) {
  check_positive(sigma, "certified_simplex_box_volume");
  check_positive(pi, "certified_simplex_box_volume");
  if (sigma.size() != pi.size()) {
    throw std::invalid_argument("certified_simplex_box_volume: size mismatch");
  }
  if (sigma.size() > 62) {
    throw std::invalid_argument("certified_simplex_box_volume: m too large for subset masks");
  }

  const auto representable = [](std::span<const Rational> values) {
    for (const Rational& v : values) {
      if (!util::representable_as_double(v)) return false;
    }
    return true;
  };

  const ddm::TierSpec tiers[] = {
      {ddm::EvalTier::kCompensatedDouble,
       [&]() -> util::RationalInterval {
         if (!representable(sigma) || !representable(pi)) {
           throw ddm::NumericError(
               "certified_simplex_box_volume: inputs not representable as doubles");
         }
         std::vector<double> sd(sigma.size());
         std::vector<double> pd(pi.size());
         for (std::size_t l = 0; l < sigma.size(); ++l) {
           sd[l] = sigma[l].to_double();
           pd[l] = pi[l].to_double();
         }
         return util::tracked_enclosure(simplex_box_volume_t0(sd, pd),
                                        "certified_simplex_box_volume");
       }},
      {ddm::EvalTier::kInterval,
       [&]() -> util::RationalInterval {
         return simplex_box_volume_i(sigma, pi, policy.interval_bits);
       }},
      {ddm::EvalTier::kExact,
       [&]() -> util::RationalInterval {
         if (sigma.size() > 30) {
           throw ddm::NumericError("certified_simplex_box_volume: exact tier limited to m <= 30");
         }
         return util::RationalInterval{simplex_box_volume(sigma, pi)};
       }},
  };
  return ddm::run_escalation_ladder(policy, "certified_simplex_box_volume", tiers);
}

}  // namespace ddm::geom
