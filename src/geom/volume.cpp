#include "geom/volume.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "combinat/binomial.hpp"
#include "combinat/subsets.hpp"
#include "util/kahan.hpp"

namespace ddm::geom {

using util::Rational;

namespace {

void check_positive(std::span<const Rational> sides, const char* what) {
  if (sides.empty()) throw std::invalid_argument(std::string(what) + ": dimension must be >= 1");
  for (const Rational& s : sides) {
    if (s.signum() <= 0) throw std::invalid_argument(std::string(what) + ": sides must be > 0");
  }
}

}  // namespace

Rational simplex_volume(std::span<const Rational> sigma) {
  check_positive(sigma, "simplex_volume");
  Rational product{1};
  for (const Rational& s : sigma) product *= s;
  return product * combinat::inverse_factorial(static_cast<std::uint32_t>(sigma.size()));
}

Rational box_volume(std::span<const Rational> pi) {
  check_positive(pi, "box_volume");
  Rational product{1};
  for (const Rational& p : pi) product *= p;
  return product;
}

Rational corner_simplex_volume(std::span<const Rational> sigma, std::span<const Rational> pi,
                               const std::vector<bool>& in_subset) {
  check_positive(sigma, "corner_simplex_volume");
  if (sigma.size() != pi.size() || sigma.size() != in_subset.size()) {
    throw std::invalid_argument("corner_simplex_volume: size mismatch");
  }
  Rational ratio_sum{0};
  for (std::size_t l = 0; l < sigma.size(); ++l) {
    if (in_subset[l]) ratio_sum += pi[l] / sigma[l];
  }
  if (ratio_sum >= Rational{1}) return Rational{0};
  const Rational scale = Rational{1} - ratio_sum;
  return simplex_volume(sigma) * scale.pow(static_cast<std::int64_t>(sigma.size()));
}

Rational simplex_box_volume(std::span<const Rational> sigma, std::span<const Rational> pi) {
  check_positive(sigma, "simplex_box_volume");
  check_positive(pi, "simplex_box_volume");
  if (sigma.size() != pi.size()) {
    throw std::invalid_argument("simplex_box_volume: size mismatch");
  }
  const std::size_t m = sigma.size();
  if (m > 30) {
    throw std::invalid_argument("simplex_box_volume: exact version limited to m <= 30");
  }
  // Precompute the ratios π_l / σ_l once.
  std::vector<Rational> ratio(m);
  for (std::size_t l = 0; l < m; ++l) ratio[l] = pi[l] / sigma[l];

  // Σ over subsets I of (−1)^{|I|} (1 − Σ_{l∈I} π_l/σ_l)^m, guarded by the
  // feasibility condition Σ_{l∈I} π_l/σ_l < 1 (Proposition 2.2). Subsets are
  // visited in reflected Gray-code order so the running Σ_{l∈I} π_l/σ_l needs
  // exactly one add or subtract per subset; the sign (−1)^|I| alternates with
  // the step index (docs/performance.md).
  Rational remainder{1};  // 1 − Σ_{l∈I} ratio_l for the current subset
  std::uint64_t mask = 0;
  Rational sum = remainder.pow(static_cast<std::int64_t>(m));  // empty subset
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t i = 1; i < limit; ++i) {
    const std::uint32_t j = combinat::gray_flip_bit(i);
    const std::uint64_t bit = std::uint64_t{1} << j;
    mask ^= bit;
    if (mask & bit) {
      remainder -= ratio[j];
    } else {
      remainder += ratio[j];
    }
    if (remainder.signum() <= 0) continue;
    const Rational term = remainder.pow(static_cast<std::int64_t>(m));
    if (combinat::gray_parity_odd(i)) {
      sum -= term;
    } else {
      sum += term;
    }
  }
  return simplex_volume(sigma) * sum;
}

double simplex_box_volume_double(std::span<const double> sigma, std::span<const double> pi) {
  if (sigma.empty() || sigma.size() != pi.size()) {
    throw std::invalid_argument("simplex_box_volume_double: bad dimensions");
  }
  const std::size_t m = sigma.size();
  if (m > 62) {
    throw std::invalid_argument("simplex_box_volume_double: m too large for subset masks");
  }
  std::vector<double> ratio(m);
  double side_product = 1.0;
  for (std::size_t l = 0; l < m; ++l) {
    if (sigma[l] <= 0.0 || pi[l] <= 0.0) {
      throw std::invalid_argument("simplex_box_volume_double: sides must be > 0");
    }
    ratio[l] = pi[l] / sigma[l];
    side_product *= sigma[l];
  }
  // Same Gray-code walk as the exact version: one add per subset plus a
  // binary-exponentiation power instead of std::pow. Both the running ratio
  // sum and the term accumulator carry Kahan compensation so the incremental
  // updates stay within a few ulps of fresh recomputation over all 2^m steps.
  const auto mm = static_cast<std::uint32_t>(m);
  util::KahanSum ratio_sum;
  std::uint64_t mask = 0;
  util::KahanSum sum{1.0};  // empty subset: (1 − 0)^m
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t i = 1; i < limit; ++i) {
    const std::uint32_t j = combinat::gray_flip_bit(i);
    const std::uint64_t bit = std::uint64_t{1} << j;
    mask ^= bit;
    ratio_sum.add((mask & bit) ? ratio[j] : -ratio[j]);
    const double rs = ratio_sum.get();
    if (rs >= 1.0) continue;
    const double term = combinat::pow_uint(1.0 - rs, mm);
    sum.add(combinat::gray_parity_odd(i) ? -term : term);
  }
  return side_product * combinat::inverse_factorial_double(mm) * sum.get();
}

}  // namespace ddm::geom
