#include "geom/polytope.hpp"

#include <stdexcept>

namespace ddm::geom {

void Polytope::add_halfspace(std::vector<double> normal, double offset) {
  if (normal.size() != dimension_) {
    throw std::invalid_argument("Polytope::add_halfspace: dimension mismatch");
  }
  halfspaces_.push_back(Halfspace{std::move(normal), offset});
}

void Polytope::add_nonnegativity() {
  for (std::size_t i = 0; i < dimension_; ++i) {
    std::vector<double> normal(dimension_, 0.0);
    normal[i] = -1.0;  // -x_i <= 0  <=>  x_i >= 0
    add_halfspace(std::move(normal), 0.0);
  }
}

void Polytope::add_upper_bounds(std::span<const double> bounds) {
  if (bounds.size() != dimension_) {
    throw std::invalid_argument("Polytope::add_upper_bounds: dimension mismatch");
  }
  for (std::size_t i = 0; i < dimension_; ++i) {
    std::vector<double> normal(dimension_, 0.0);
    normal[i] = 1.0;
    add_halfspace(std::move(normal), bounds[i]);
  }
}

bool Polytope::contains(std::span<const double> point, double eps) const {
  if (point.size() != dimension_) {
    throw std::invalid_argument("Polytope::contains: dimension mismatch");
  }
  for (const Halfspace& h : halfspaces_) {
    double dot = 0.0;
    for (std::size_t i = 0; i < dimension_; ++i) dot += h.normal[i] * point[i];
    if (dot > h.offset + eps) return false;
  }
  return true;
}

Polytope Polytope::simplex(std::span<const double> sigma) {
  Polytope result{sigma.size()};
  result.add_nonnegativity();
  std::vector<double> normal(sigma.size());
  for (std::size_t l = 0; l < sigma.size(); ++l) {
    if (sigma[l] <= 0.0) throw std::invalid_argument("Polytope::simplex: sides must be > 0");
    normal[l] = 1.0 / sigma[l];
  }
  result.add_halfspace(std::move(normal), 1.0);
  return result;
}

Polytope Polytope::box(std::span<const double> pi) {
  Polytope result{pi.size()};
  result.add_nonnegativity();
  result.add_upper_bounds(pi);
  return result;
}

Polytope Polytope::simplex_box(std::span<const double> sigma, std::span<const double> pi) {
  if (sigma.size() != pi.size()) {
    throw std::invalid_argument("Polytope::simplex_box: dimension mismatch");
  }
  Polytope result = box(pi);
  std::vector<double> normal(sigma.size());
  for (std::size_t l = 0; l < sigma.size(); ++l) {
    if (sigma[l] <= 0.0) throw std::invalid_argument("Polytope::simplex_box: sides must be > 0");
    normal[l] = 1.0 / sigma[l];
  }
  result.add_halfspace(std::move(normal), 1.0);
  return result;
}

Polytope Polytope::corner_simplex(std::span<const double> sigma, std::span<const double> pi,
                                  const std::vector<bool>& in_subset) {
  if (sigma.size() != pi.size() || sigma.size() != in_subset.size()) {
    throw std::invalid_argument("Polytope::corner_simplex: dimension mismatch");
  }
  Polytope result = simplex(sigma);
  for (std::size_t l = 0; l < sigma.size(); ++l) {
    if (!in_subset[l]) continue;
    std::vector<double> normal(sigma.size(), 0.0);
    normal[l] = -1.0;  // -x_l <= -π_l  <=>  x_l >= π_l
    result.add_halfspace(std::move(normal), -pi[l]);
  }
  return result;
}

}  // namespace ddm::geom
