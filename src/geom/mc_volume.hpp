// mc_volume.hpp — Monte Carlo volume estimation.
//
// Cross-validation oracle for the exact formulas of Section 2: sample
// uniformly in a bounding box, count hits, scale by the box volume. Used in
// tests and in the geometry example to confirm Proposition 2.2 numerically.
#pragma once

#include <cstdint>
#include <span>

#include "geom/polytope.hpp"
#include "prob/rng.hpp"

namespace ddm::geom {

/// Estimate with a 1-sigma standard error.
struct VolumeEstimate {
  double volume = 0.0;
  double standard_error = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t hits = 0;
};

/// Estimate Vol(polytope ∩ [0, bounds]) by uniform rejection sampling inside
/// the box [0, bounds_1] × ... × [0, bounds_d]. The polytope is assumed to be
/// contained in that box for the estimate to equal its full volume.
[[nodiscard]] VolumeEstimate estimate_volume(const Polytope& polytope,
                                             std::span<const double> bounds, std::uint64_t samples,
                                             prob::Rng& rng);

}  // namespace ddm::geom
