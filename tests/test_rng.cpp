// Tests for the xoshiro256++ RNG wrapper.
#include "prob/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace ddm::prob {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a{1234};
  Rng b{1234};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsFine) {
  Rng rng{0};
  std::set<std::uint64_t> values;
  for (int i = 0; i < 50; ++i) values.insert(rng());
  EXPECT_GT(values.size(), 45u);  // not stuck
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{42};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng{7};
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);        // ~7 sigma of 1/sqrt(12 n)
  EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(Rng, UniformRange) {
  Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformBelowIsInRangeAndRoughlyUniform) {
  Rng rng{9};
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t v = rng.uniform_below(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, 6.0 * std::sqrt(n * 0.1 * 0.9));
  }
}

TEST(Rng, UniformBelowZeroBound) {
  Rng rng{3};
  EXPECT_EQ(rng.uniform_below(0), 0u);
  EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{21};
  const int n = 100000;
  int heads = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
  // Degenerate probabilities.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  const Rng parent{100};
  Rng child_a = parent.split(0);
  Rng child_b = parent.split(1);
  Rng child_a2 = parent.split(0);
  int equal_ab = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = child_a();
    const std::uint64_t b = child_b();
    EXPECT_EQ(a, child_a2());  // same stream id → same sequence
    if (a == b) ++equal_ab;
  }
  EXPECT_LT(equal_ab, 3);  // distinct stream ids → unrelated sequences
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~std::uint64_t{0});
}

TEST(Rng, BitBalance) {
  // Each of the 64 output bits should be ~50% ones.
  Rng rng{555};
  const int n = 20000;
  std::vector<int> ones(64, 0);
  for (int i = 0; i < n; ++i) {
    const std::uint64_t v = rng();
    for (int b = 0; b < 64; ++b) {
      if (v & (std::uint64_t{1} << b)) ++ones[static_cast<std::size_t>(b)];
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(static_cast<double>(ones[static_cast<std::size_t>(b)]), n / 2.0,
                6.0 * std::sqrt(n * 0.25))
        << "bit " << b;
  }
}

}  // namespace
}  // namespace ddm::prob
