// Tests for the baseline protocols and the full-information oracle.
#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/nonoblivious.hpp"
#include "core/oblivious.hpp"
#include "prob/rng.hpp"
#include "prob/uniform_sum.hpp"
#include "sim/monte_carlo.hpp"

namespace ddm::core {
namespace {

using util::Rational;

TEST(AllBin0, PutsEverythingInOneBin) {
  const FunctorProtocol protocol = make_all_bin0(3);
  prob::Rng rng{1};
  const BinLoads loads = play(protocol, std::vector<double>{0.2, 0.3, 0.4}, rng);
  EXPECT_DOUBLE_EQ(loads.bin0, 0.9);
  EXPECT_DOUBLE_EQ(loads.bin1, 0.0);
}

TEST(AllBin0, WinningProbabilityIsIrwinHall) {
  const FunctorProtocol protocol = make_all_bin0(3);
  prob::Rng rng{77};
  const sim::SimResult result = sim::estimate_winning_probability(protocol, 1.5, 300000, rng);
  EXPECT_TRUE(result.covers(prob::irwin_hall_cdf(3, 1.5)));
}

TEST(RoundRobin, AlternatesBins) {
  const FunctorProtocol protocol = make_round_robin(4);
  prob::Rng rng{1};
  const BinLoads loads = play(protocol, std::vector<double>{0.1, 0.2, 0.3, 0.4}, rng);
  EXPECT_DOUBLE_EQ(loads.bin0, 0.4);
  EXPECT_DOUBLE_EQ(loads.bin1, 0.6);
}

TEST(RoundRobin, BeatsAllBin0) {
  prob::Rng rng_a{5};
  prob::Rng rng_b{5};
  const auto rr = sim::estimate_winning_probability(make_round_robin(4), 1.0, 200000, rng_a);
  const auto ab = sim::estimate_winning_probability(make_all_bin0(4), 1.0, 200000, rng_b);
  EXPECT_GT(rr.estimate, ab.estimate);
}

TEST(PyN3, ThresholdApproximatesPaperOptimum) {
  const SingleThresholdProtocol protocol = make_py_n3();
  EXPECT_EQ(protocol.size(), 3u);
  EXPECT_NEAR(protocol.thresholds()[0].to_double(), 0.622035952850104, 1e-15);
}

TEST(PyN3, AchievesPaperWinningProbability) {
  // The settled PY conjecture: P ≈ 0.5450 at t = 1 (within the rounding of
  // the rational approximation of the threshold).
  const SingleThresholdProtocol protocol = make_py_n3();
  const Rational p = threshold_winning_probability(protocol.thresholds(), Rational{1});
  EXPECT_NEAR(p.to_double(), 0.544631, 1e-6);
}

TEST(FullInformationWin, SmallCases) {
  // Everything fits in one bin.
  EXPECT_TRUE(full_information_win(std::vector<double>{0.2, 0.3}, 1.0));
  // Needs a split: 0.9 + 0.8 > 1 but separately fine.
  EXPECT_TRUE(full_information_win(std::vector<double>{0.9, 0.8}, 1.0));
  // Infeasible: three items of 0.9 — some bin gets two (1.8 > 1).
  EXPECT_FALSE(full_information_win(std::vector<double>{0.9, 0.9, 0.9}, 1.0));
  // The subtle case from the design notes: total = 2.0 but no valid split.
  EXPECT_FALSE(full_information_win(std::vector<double>{0.7, 0.7, 0.6}, 1.0));
  // Slightly larger capacity makes it feasible (0.7 + 0.6 = 1.3 <= 1.4).
  EXPECT_TRUE(full_information_win(std::vector<double>{0.7, 0.7, 0.6}, 1.4));
  // Empty input trivially wins.
  EXPECT_TRUE(full_information_win(std::vector<double>{}, 0.5));
}

TEST(FullInformationWin, RejectsHugeN) {
  EXPECT_THROW((void)full_information_win(std::vector<double>(30, 0.01), 1.0),
               std::invalid_argument);
}

TEST(FullInformationExact, ClosedFormsMatchOracleSimulation) {
  prob::Rng rng{404};
  for (std::uint32_t n = 1; n <= 2; ++n) {
    for (const double t : {0.4, 0.7, 1.0, 1.3}) {
      const double exact = full_information_winning_probability_exact(n, t);
      const auto result = sim::estimate_event_probability(
          n, [t](std::span<const double> xs) { return full_information_win(xs, t); }, 200000,
          rng);
      // 5-sigma band: 8 independent checks at 95% CIs would be flaky.
      EXPECT_NEAR(result.estimate, exact, 5.0 * result.standard_error + 1e-4)
          << "n=" << n << " t=" << t;
    }
  }
}

TEST(FullInformationExact, Validation) {
  EXPECT_THROW((void)full_information_winning_probability_exact(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)full_information_winning_probability_exact(3, 1.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(full_information_winning_probability_exact(2, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(full_information_winning_probability_exact(2, 5.0), 1.0);
}

TEST(FullInformation, DominatesNoCommunicationOptimum) {
  // The value of information: the full-information oracle beats the best
  // no-communication protocol (n = 3, t = 1: oracle > 0.5446).
  prob::Rng rng{123};
  const auto oracle = sim::estimate_event_probability(
      3, [](std::span<const double> xs) { return full_information_win(xs, 1.0); }, 400000,
      rng);
  EXPECT_GT(oracle.ci_low, 0.5446);
}

TEST(FullInformation, MonotoneInCapacity) {
  prob::Rng rng{9};
  double previous = -1.0;
  for (const double t : {0.5, 0.8, 1.1, 1.4, 1.7}) {
    const auto result = sim::estimate_event_probability(
        4, [t](std::span<const double> xs) { return full_information_win(xs, t); }, 100000,
        rng);
    EXPECT_GT(result.estimate + 0.01, previous);
    previous = result.estimate;
  }
}

}  // namespace
}  // namespace ddm::core
