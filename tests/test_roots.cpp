// Tests for real-root isolation and refinement.
#include "poly/roots.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ddm::poly {
namespace {

using util::BigInt;
using util::Rational;

QPoly make(std::initializer_list<std::int64_t> coeffs_low_first) {
  std::vector<Rational> coeffs;
  for (const std::int64_t c : coeffs_low_first) coeffs.emplace_back(c);
  return QPoly{std::move(coeffs)};
}

Rational tiny_width() { return Rational{BigInt{1}, BigInt::pow(BigInt{2}, 80)}; }

TEST(RootIsolation, QuadraticRoots) {
  const auto roots = isolate_all_roots(make({2, -3, 1}));  // roots 1, 2
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_NEAR(refine_root(make({2, -3, 1}), roots[0], tiny_width()).approx(), 1.0, 1e-20);
  EXPECT_NEAR(refine_root(make({2, -3, 1}), roots[1], tiny_width()).approx(), 2.0, 1e-20);
}

TEST(RootIsolation, IsolatingIntervalsAreDisjointAndSorted) {
  // Roots at 0, 1/2, 1, 3/2: p = x(2x−1)(x−1)(2x−3)
  const QPoly p = make({0, 1}) * make({-1, 2}) * make({-1, 1}) * make({-3, 2});
  const auto roots = isolate_all_roots(p);
  ASSERT_EQ(roots.size(), 4u);
  for (std::size_t i = 1; i < roots.size(); ++i) {
    EXPECT_LE(roots[i - 1].hi, roots[i].lo);
  }
}

TEST(RootIsolation, RationalRootBracketedTightly) {
  const QPoly p = make({-1, 2});  // root 1/2
  const auto roots = isolate_all_roots(p);
  ASSERT_EQ(roots.size(), 1u);
  const RootInterval refined = refine_root(p, roots[0], tiny_width());
  EXPECT_LE((refined.midpoint() - Rational(1, 2)).abs(), tiny_width());
  EXPECT_LE(refined.lo, Rational(1, 2));
  EXPECT_GE(refined.hi, Rational(1, 2));
}

TEST(RootIsolation, IrrationalRootSqrt2) {
  const QPoly p = make({-2, 0, 1});
  const auto roots = isolate_roots(p, Rational{0}, Rational{2});
  ASSERT_EQ(roots.size(), 1u);
  const RootInterval refined = refine_root(p, roots[0], tiny_width());
  EXPECT_NEAR(refined.approx(), std::sqrt(2.0), 1e-15);
  EXPECT_FALSE(refined.is_exact());
  // The refined interval still brackets the root: p changes sign across it.
  EXPECT_LE((p(refined.lo) * p(refined.hi)).signum(), 0);
}

TEST(RootIsolation, MultipleRootsReportedOnce) {
  const QPoly p = make({-1, 1}).pow(3) * make({-3, 1});  // (x−1)³ (x−3)
  const auto roots = isolate_all_roots(p);
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_NEAR(refine_root(p, roots[0], tiny_width()).approx(), 1.0, 1e-20);
  EXPECT_NEAR(refine_root(p, roots[1], tiny_width()).approx(), 3.0, 1e-20);
}

TEST(RootIsolation, EmptyWhenNoRoots) {
  EXPECT_TRUE(isolate_all_roots(make({1, 0, 1})).empty());
  EXPECT_TRUE(isolate_roots(make({2, -3, 1}), Rational{5}, Rational{9}).empty());
  EXPECT_TRUE(isolate_all_roots(QPoly{Rational{3}}).empty());
}

TEST(RootIsolation, ZeroPolynomialThrows) {
  EXPECT_THROW((void)isolate_all_roots(QPoly{}), std::invalid_argument);
  EXPECT_THROW((void)isolate_roots(QPoly{}, Rational{0}, Rational{1}), std::invalid_argument);
}

TEST(RootIsolation, InvertedIntervalThrows) {
  EXPECT_THROW((void)isolate_roots(make({-1, 1}), Rational{2}, Rational{0}),
               std::invalid_argument);
}

TEST(UniqueRoot, PaperN3Threshold) {
  // β² − 2β + 6/7: the root in (1/2, 1] is 1 − sqrt(1/7) = 0.6220355...
  // (the optimal threshold of Section 5.2.1, conjectured by PY'91).
  const QPoly condition{std::vector<Rational>{Rational(6, 7), Rational{-2}, Rational{1}}};
  const RootInterval root = unique_root(condition, Rational(1, 2), Rational{1}, tiny_width());
  EXPECT_NEAR(root.approx(), 1.0 - std::sqrt(1.0 / 7.0), 1e-15);
}

TEST(UniqueRoot, PaperN4Threshold) {
  // −26/3 β³ + 98/3 β² − 368/9 β + 416/27: unique root in (0, 1] at ≈ 0.678
  // (Section 5.2.2, sign-corrected constant).
  const QPoly condition{std::vector<Rational>{Rational(416, 27), Rational(-368, 9),
                                              Rational(98, 3), Rational(-26, 3)}};
  const RootInterval root = unique_root(condition, Rational{0}, Rational{1}, tiny_width());
  EXPECT_NEAR(root.approx(), 0.678, 5e-4);
}

TEST(UniqueRoot, ThrowsWhenCountIsNotOne) {
  const QPoly two_roots = make({2, -3, 1});
  EXPECT_THROW((void)unique_root(two_roots, Rational{0}, Rational{3}, tiny_width()),
               std::logic_error);
  EXPECT_THROW((void)unique_root(two_roots, Rational{5}, Rational{6}, tiny_width()),
               std::logic_error);
}

TEST(RefineRoot, WidthContract) {
  const QPoly p = make({-2, 0, 1});
  auto roots = isolate_roots(p, Rational{0}, Rational{2});
  ASSERT_EQ(roots.size(), 1u);
  for (int bits : {10, 40, 120}) {
    const Rational width{BigInt{1}, BigInt::pow(BigInt{2}, static_cast<std::uint64_t>(bits))};
    const RootInterval refined = refine_root(p, roots[0], width);
    EXPECT_LE(refined.width(), width);
  }
}

TEST(RefineRoot, ExactIntervalPassesThrough) {
  const RootInterval exact{Rational(1, 2), Rational(1, 2)};
  const RootInterval refined = refine_root(make({-1, 2}), exact, tiny_width());
  EXPECT_TRUE(refined.is_exact());
  EXPECT_EQ(refined.midpoint(), Rational(1, 2));
}

TEST(RootInterval, Accessors) {
  const RootInterval r{Rational{0}, Rational(1, 2)};
  EXPECT_EQ(r.midpoint(), Rational(1, 4));
  EXPECT_EQ(r.width(), Rational(1, 2));
  EXPECT_FALSE(r.is_exact());
  EXPECT_DOUBLE_EQ(r.approx(), 0.25);
}

TEST(RootIsolation, DenseRootClusters) {
  // Roots at k/10 for k = 1..6 — forces deep bisection to separate them.
  QPoly p{Rational{1}};
  for (int k = 1; k <= 6; ++k) p = p * QPoly{std::vector<Rational>{Rational(-k, 10), Rational{1}}};
  const auto roots = isolate_roots(p, Rational{0}, Rational{1});
  ASSERT_EQ(roots.size(), 6u);
  for (int k = 1; k <= 6; ++k) {
    const RootInterval refined = refine_root(p, roots[static_cast<std::size_t>(k - 1)],
                                             tiny_width());
    EXPECT_LE((refined.midpoint() - Rational(k, 10)).abs(), tiny_width()) << k;
  }
}

}  // namespace
}  // namespace ddm::poly
