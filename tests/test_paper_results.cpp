// End-to-end reproduction tests: every numeric claim the paper makes,
// checked against this library's exact derivations and Monte Carlo.
//
// Paper: Georgiades, Mavronicolas, Spirakis — "Optimal, Distributed
// Decision-Making: The Case of No Communication" (FCT'99, full version 2000).
#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.hpp"
#include "core/nonoblivious.hpp"
#include "core/oblivious.hpp"
#include "core/optimality.hpp"
#include "core/symmetric_threshold.hpp"
#include "poly/roots.hpp"
#include "prob/rng.hpp"
#include "sim/monte_carlo.hpp"

namespace ddm {
namespace {

using core::SymmetricOptimum;
using core::SymmetricThresholdAnalysis;
using poly::QPoly;
using util::Rational;

// ---------------------------------------------------------------------------
// Section 4 (Theorem 4.3): the optimal oblivious protocol is α = 1/2,
// uniformly in n.
// ---------------------------------------------------------------------------

TEST(PaperSection4, OptimalObliviousIsUniformHalf) {
  for (std::uint32_t n = 2; n <= 10; ++n) {
    const Rational t{static_cast<std::int64_t>(n), 3};
    // (a) the optimality conditions hold at 1/2 …
    const std::vector<Rational> half(n, Rational(1, 2));
    EXPECT_EQ(core::stationarity_residual(half, t), Rational{0});
    // (b) … and 1/2 beats a dense grid of symmetric alternatives.
    const Rational at_half = core::oblivious_winning_probability(half, t);
    for (int i = 0; i <= 20; ++i) {
      if (i == 10) continue;
      const std::vector<Rational> probe(n, Rational{i, 20});
      EXPECT_LT(core::oblivious_winning_probability(probe, t), at_half)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(PaperSection4, ObliviousOptimumN3T1) {
  // 2^{-3} Σ_k C(3,k) φ_1(k) = 5/12 ≈ 0.4167.
  EXPECT_EQ(core::optimal_oblivious_winning_probability(3, Rational{1}), Rational(5, 12));
}

// ---------------------------------------------------------------------------
// Section 5.2.1 (n = 3, δ = 1).
// ---------------------------------------------------------------------------

TEST(PaperSection521, PiecewisePolynomialsExactlyAsPrinted) {
  const auto analysis = SymmetricThresholdAnalysis::build(3, Rational{1});
  const auto& pieces = analysis.winning_probability().pieces();
  ASSERT_EQ(pieces.size(), 3u);
  // β ∈ [0, 1/3] and (1/3, 1/2]: P = 1/6 + (3/2)β² − (1/2)β³.
  const QPoly low{std::vector<Rational>{Rational(1, 6), Rational{0}, Rational(3, 2),
                                        Rational(-1, 2)}};
  // β ∈ (1/2, 1]: P = −11/6 + 9β − (21/2)β² + (7/2)β³.
  const QPoly high{std::vector<Rational>{Rational(-11, 6), Rational{9}, Rational(-21, 2),
                                         Rational(7, 2)}};
  EXPECT_EQ(pieces[0].poly, low);
  EXPECT_EQ(pieces[1].poly, low);
  EXPECT_EQ(pieces[2].poly, high);
}

TEST(PaperSection521, OptimalityConditionIsBetaSquaredMinusTwoBetaPlusSixSevenths) {
  const SymmetricOptimum opt = SymmetricThresholdAnalysis::build(3, Rational{1}).optimize();
  // The paper states the optimality condition as β² − 2β + 6/7 = 0; our
  // derivative is (21/2)(β² − 2β + 6/7).
  const QPoly paper{std::vector<Rational>{Rational(6, 7), Rational{-2}, Rational{1}}};
  EXPECT_EQ(opt.optimality_condition, paper * Rational(21, 2));
}

TEST(PaperSection521, OptimalThresholdIsOneMinusSqrtOneSeventh) {
  const SymmetricOptimum opt = SymmetricThresholdAnalysis::build(3, Rational{1}).optimize();
  // β* = 1 − √(1/7): verify algebraically that 7(1 − β*)² = 1 by interval
  // arithmetic — the defining polynomial 7β² − 14β + 6 vanishes across the
  // isolating interval.
  const QPoly defining{std::vector<Rational>{Rational{6}, Rational{-14}, Rational{7}}};
  EXPECT_LE((defining(opt.beta.lo) * defining(opt.beta.hi)).signum(), 0);
  EXPECT_NEAR(opt.beta.approx(), 0.622, 5e-4);       // the paper's 0.622
  EXPECT_NEAR(opt.value.to_double(), 0.545, 5e-4);   // the paper's 0.545
}

TEST(PaperSection521, RejectedCandidatesMatchCaseAnalysis) {
  // In [0, 1/2], the derivative 3β − (3/2)β² vanishes only at β = 0 and 2;
  // the paper rejects both. Our maximizer therefore reports no interior
  // critical candidate below 1/2.
  std::vector<poly::MaxCandidate> candidates;
  const auto analysis = SymmetricThresholdAnalysis::build(3, Rational{1});
  (void)analysis.winning_probability().maximize(
      Rational{util::BigInt{1}, util::BigInt::pow(util::BigInt{2}, 96)}, &candidates);
  for (const auto& candidate : candidates) {
    if (candidate.interior_critical) {
      EXPECT_GT(candidate.location.midpoint(), Rational(1, 2));
    }
  }
}

TEST(PaperSection521, MonteCarloConfirmsOptimum) {
  const auto protocol = core::make_py_n3();
  prob::Rng rng{20260707};
  const auto result = sim::estimate_winning_probability(protocol, 1.0, 2000000, rng);
  EXPECT_TRUE(result.covers(0.544631)) << result.estimate;
}

TEST(PaperSection521, NonObliviousBeatsOblivious) {
  // The knowledge/uniformity trade-off: 0.545 > 5/12.
  const SymmetricOptimum opt = SymmetricThresholdAnalysis::build(3, Rational{1}).optimize();
  EXPECT_GT(opt.value, core::optimal_oblivious_winning_probability(3, Rational{1}));
}

// ---------------------------------------------------------------------------
// Section 5.2.2 (n = 4, δ = 4/3).
// ---------------------------------------------------------------------------

TEST(PaperSection522, OptimalityPolynomialSignCorrected) {
  // Paper (with the constant's sign fixed, see DESIGN.md):
  //   −(26/3)β³ + (98/3)β² − (368/9)β + 416/27 = 0, root ≈ 0.678.
  const SymmetricOptimum opt =
      SymmetricThresholdAnalysis::build(4, Rational(4, 3)).optimize();
  const QPoly corrected{std::vector<Rational>{Rational(416, 27), Rational(-368, 9),
                                              Rational(98, 3), Rational(-26, 3)}};
  EXPECT_EQ(opt.optimality_condition, corrected);
  EXPECT_NEAR(opt.beta.approx(), 0.678, 5e-4);
}

TEST(PaperSection522, OptimumConfirmedByGridAndSimulation) {
  const SymmetricOptimum opt =
      SymmetricThresholdAnalysis::build(4, Rational(4, 3)).optimize();
  // Grid-dominance.
  for (int i = 0; i <= 40; ++i) {
    EXPECT_GE(opt.value,
              core::symmetric_threshold_winning_probability(4, Rational{i, 40}, Rational(4, 3)));
  }
  // Simulation at the optimum.
  const Rational beta_approx{678, 1000};
  const auto protocol = core::SingleThresholdProtocol::symmetric(4, beta_approx);
  prob::Rng rng{314159};
  const auto result =
      sim::estimate_winning_probability(protocol, 4.0 / 3.0, 2000000, rng);
  const double exact =
      core::symmetric_threshold_winning_probability(4, beta_approx, Rational(4, 3)).to_double();
  EXPECT_TRUE(result.covers(exact)) << result.estimate << " vs " << exact;
}

// ---------------------------------------------------------------------------
// Non-uniformity (abstract + Section 5.2): optimal thresholds differ with n.
// ---------------------------------------------------------------------------

TEST(PaperNonUniformity, OptimalThresholdDependsOnN) {
  const SymmetricOptimum opt3 = SymmetricThresholdAnalysis::build(3, Rational{1}).optimize();
  const SymmetricOptimum opt4 =
      SymmetricThresholdAnalysis::build(4, Rational(4, 3)).optimize();
  // 0.622 vs 0.678 — distinctly different thresholds.
  EXPECT_GT((opt4.beta.midpoint() - opt3.beta.midpoint()).abs(), Rational(5, 100));
}

TEST(PaperNonUniformity, NonObliviousVsObliviousAcrossN) {
  // The paper claims the optimal non-oblivious protocol beats the optimal
  // oblivious one. Our exact computation confirms this for n = 2, 3, 5, 6 at
  // t = n/3 — but finds the claim REVERSED at the paper's own second
  // instance n = 4, t = 4/3: the best symmetric threshold achieves
  // ~0.42854 while the oblivious coin achieves 559/1296 ~ 0.43133. Both
  // values are verified by Monte Carlo elsewhere in this suite; see
  // EXPERIMENTS.md ("discrepancies"). We pin the true relationship here.
  for (std::uint32_t n : {2u, 3u, 5u, 6u}) {
    const Rational t{static_cast<std::int64_t>(n), 3};
    const SymmetricOptimum opt = SymmetricThresholdAnalysis::build(n, t).optimize();
    EXPECT_GT(opt.value, core::optimal_oblivious_winning_probability(n, t)) << "n=" << n;
  }
  const SymmetricOptimum opt4 =
      SymmetricThresholdAnalysis::build(4, Rational(4, 3)).optimize();
  EXPECT_LT(opt4.value, core::optimal_oblivious_winning_probability(4, Rational(4, 3)));
}

// ---------------------------------------------------------------------------
// Theorem 5.2 sanity: the non-oblivious optimality conditions admit no
// n-independent (uniform) solution.
// ---------------------------------------------------------------------------

TEST(PaperTheorem52, NoUniformSolution) {
  // The n = 3 optimum does not satisfy the n = 4 optimality condition and
  // vice versa: evaluate each condition at the other instance's optimal β
  // (via exact interval endpoints — the sign is constant on the interval).
  const SymmetricOptimum opt3 = SymmetricThresholdAnalysis::build(3, Rational{1}).optimize();
  const SymmetricOptimum opt4 =
      SymmetricThresholdAnalysis::build(4, Rational(4, 3)).optimize();
  const auto nonzero_on_interval = [](const QPoly& p, const poly::RootInterval& interval) {
    const Rational lo = p(interval.lo);
    const Rational hi = p(interval.hi);
    return lo.signum() == hi.signum() && lo.signum() != 0;
  };
  EXPECT_TRUE(nonzero_on_interval(opt4.optimality_condition, opt3.beta));
  EXPECT_TRUE(nonzero_on_interval(opt3.optimality_condition, opt4.beta));
}

// ---------------------------------------------------------------------------
// Value-of-information bracket (PY'91 context): oblivious < non-oblivious <
// full information.
// ---------------------------------------------------------------------------

TEST(PaperContext, InformationHierarchyN3T1) {
  const double oblivious =
      core::optimal_oblivious_winning_probability(3, Rational{1}).to_double();  // 0.4167
  const SymmetricOptimum nonobl = SymmetricThresholdAnalysis::build(3, Rational{1}).optimize();
  prob::Rng rng{55};
  const auto oracle = sim::estimate_event_probability(
      3, [](std::span<const double> xs) { return core::full_information_win(xs, 1.0); },
      1000000, rng);
  EXPECT_LT(oblivious, nonobl.value.to_double());
  EXPECT_LT(nonobl.value.to_double(), oracle.ci_low);
}

}  // namespace
}  // namespace ddm
