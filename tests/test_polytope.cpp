// Tests for the H-representation polytopes and the Monte Carlo volume
// estimator used to cross-validate Proposition 2.2.
#include "geom/polytope.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geom/mc_volume.hpp"
#include "prob/rng.hpp"

namespace ddm::geom {
namespace {

TEST(Polytope, SimplexMembership) {
  const std::vector<double> sigma{1.0, 1.0};
  const Polytope simplex = Polytope::simplex(sigma);
  EXPECT_TRUE(simplex.contains(std::vector<double>{0.25, 0.25}));
  EXPECT_TRUE(simplex.contains(std::vector<double>{0.0, 0.0}));
  EXPECT_TRUE(simplex.contains(std::vector<double>{0.5, 0.5}));   // on the diagonal face
  EXPECT_FALSE(simplex.contains(std::vector<double>{0.6, 0.6}));  // above it
  EXPECT_FALSE(simplex.contains(std::vector<double>{-0.1, 0.2}));
}

TEST(Polytope, SimplexScaledSides) {
  const std::vector<double> sigma{2.0, 4.0};
  const Polytope simplex = Polytope::simplex(sigma);
  EXPECT_TRUE(simplex.contains(std::vector<double>{1.9, 0.1}));
  EXPECT_FALSE(simplex.contains(std::vector<double>{1.9, 0.5}));
  EXPECT_TRUE(simplex.contains(std::vector<double>{0.0, 3.9}));
}

TEST(Polytope, BoxMembership) {
  const std::vector<double> pi{1.0, 0.5};
  const Polytope box = Polytope::box(pi);
  EXPECT_TRUE(box.contains(std::vector<double>{0.9, 0.4}));
  EXPECT_FALSE(box.contains(std::vector<double>{0.9, 0.6}));
  EXPECT_FALSE(box.contains(std::vector<double>{1.1, 0.1}));
}

TEST(Polytope, SimplexBoxIsIntersection) {
  const std::vector<double> sigma{1.0, 1.0};
  const std::vector<double> pi{0.75, 0.75};
  const Polytope sb = Polytope::simplex_box(sigma, pi);
  const Polytope s = Polytope::simplex(sigma);
  const Polytope b = Polytope::box(pi);
  prob::Rng rng{7};
  for (int i = 0; i < 2000; ++i) {
    const std::vector<double> p{rng.uniform(), rng.uniform()};
    EXPECT_EQ(sb.contains(p), s.contains(p) && b.contains(p));
  }
}

TEST(Polytope, CornerSimplexMembership) {
  const std::vector<double> sigma{1.0, 1.0};
  const std::vector<double> pi{0.25, 0.25};
  const Polytope corner = Polytope::corner_simplex(sigma, pi, std::vector<bool>{true, false});
  EXPECT_TRUE(corner.contains(std::vector<double>{0.3, 0.1}));    // x0 >= 0.25, inside simplex
  EXPECT_FALSE(corner.contains(std::vector<double>{0.2, 0.1}));   // x0 < 0.25
  EXPECT_FALSE(corner.contains(std::vector<double>{0.6, 0.6}));   // outside simplex
}

TEST(Polytope, DimensionMismatchThrows) {
  Polytope p{2};
  EXPECT_THROW(p.add_halfspace(std::vector<double>{1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW((void)p.contains(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(p.add_upper_bounds(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW((void)Polytope::simplex_box(std::vector<double>{1.0},
                                           std::vector<double>{1.0, 1.0}),
               std::invalid_argument);
}

TEST(Polytope, NonPositiveSidesThrow) {
  EXPECT_THROW((void)Polytope::simplex(std::vector<double>{1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)Polytope::simplex_box(std::vector<double>{-1.0},
                                           std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Polytope, ToleranceParameter) {
  const Polytope simplex = Polytope::simplex(std::vector<double>{1.0, 1.0});
  const std::vector<double> just_outside{0.5000001, 0.5};
  EXPECT_FALSE(simplex.contains(just_outside));
  EXPECT_TRUE(simplex.contains(just_outside, 1e-3));
}

TEST(McVolume, UnitSimplex2D) {
  const Polytope simplex = Polytope::simplex(std::vector<double>{1.0, 1.0});
  prob::Rng rng{11};
  const VolumeEstimate estimate =
      estimate_volume(simplex, std::vector<double>{1.0, 1.0}, 200000, rng);
  EXPECT_NEAR(estimate.volume, 0.5, 5.0 * estimate.standard_error + 1e-9);
  EXPECT_EQ(estimate.samples, 200000u);
  EXPECT_GT(estimate.hits, 0u);
}

TEST(McVolume, BoxIsExactUpToSampling) {
  const Polytope box = Polytope::box(std::vector<double>{0.5, 0.5});
  prob::Rng rng{13};
  // Sampling inside the box itself: hit rate 1, zero variance.
  const VolumeEstimate estimate =
      estimate_volume(box, std::vector<double>{0.5, 0.5}, 10000, rng);
  EXPECT_DOUBLE_EQ(estimate.volume, 0.25);
  EXPECT_DOUBLE_EQ(estimate.standard_error, 0.0);
}

TEST(McVolume, InvalidArgumentsThrow) {
  const Polytope box = Polytope::box(std::vector<double>{1.0});
  prob::Rng rng{1};
  EXPECT_THROW((void)estimate_volume(box, std::vector<double>{1.0, 1.0}, 100, rng),
               std::invalid_argument);
  EXPECT_THROW((void)estimate_volume(box, std::vector<double>{1.0}, 0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)estimate_volume(box, std::vector<double>{-1.0}, 100, rng),
               std::invalid_argument);
}

TEST(McVolume, DeterministicGivenSeed) {
  const Polytope simplex = Polytope::simplex(std::vector<double>{1.0, 1.0, 1.0});
  prob::Rng rng_a{99};
  prob::Rng rng_b{99};
  const VolumeEstimate a = estimate_volume(simplex, std::vector<double>{1, 1, 1}, 50000, rng_a);
  const VolumeEstimate b = estimate_volume(simplex, std::vector<double>{1, 1, 1}, 50000, rng_b);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_DOUBLE_EQ(a.volume, b.volume);
}

}  // namespace
}  // namespace ddm::geom
