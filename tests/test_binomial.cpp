// Tests for combinat: binomial coefficients and inverse factorials.
#include "combinat/binomial.hpp"

#include <gtest/gtest.h>

namespace ddm::combinat {
namespace {

using util::BigInt;
using util::Rational;

TEST(Binomial, SmallValues) {
  EXPECT_EQ(binomial(0, 0).to_string(), "1");
  EXPECT_EQ(binomial(5, 0).to_string(), "1");
  EXPECT_EQ(binomial(5, 5).to_string(), "1");
  EXPECT_EQ(binomial(5, 2).to_string(), "10");
  EXPECT_EQ(binomial(10, 3).to_string(), "120");
}

TEST(Binomial, OutOfRangeIsZero) {
  EXPECT_TRUE(binomial(3, 4).is_zero());
  EXPECT_TRUE(binomial(0, 1).is_zero());
}

TEST(Binomial, Symmetry) {
  for (std::uint32_t n = 0; n <= 20; ++n) {
    for (std::uint32_t k = 0; k <= n; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n, n - k)) << n << " choose " << k;
    }
  }
}

TEST(Binomial, PascalIdentity) {
  for (std::uint32_t n = 1; n <= 25; ++n) {
    for (std::uint32_t k = 1; k <= n; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
    }
  }
}

TEST(Binomial, RowSumsArePowersOfTwo) {
  for (std::uint32_t n = 0; n <= 30; ++n) {
    BigInt sum{0};
    for (std::uint32_t k = 0; k <= n; ++k) sum += binomial(n, k);
    EXPECT_EQ(sum, BigInt::pow(BigInt{2}, n));
  }
}

TEST(Binomial, LargeValueExact) {
  EXPECT_EQ(binomial(100, 50).to_string(),
            "100891344545564193334812497256");
}

TEST(InverseFactorial, Values) {
  EXPECT_EQ(inverse_factorial(0), Rational{1});
  EXPECT_EQ(inverse_factorial(1), Rational{1});
  EXPECT_EQ(inverse_factorial(4), Rational(1, 24));
  EXPECT_EQ(inverse_factorial(10), Rational(1, 3628800));
}

TEST(BinomialDouble, MatchesExactWhereRepresentable) {
  for (std::uint32_t n = 0; n <= 50; ++n) {
    for (std::uint32_t k = 0; k <= n; ++k) {
      EXPECT_DOUBLE_EQ(binomial_double(n, k), binomial(n, k).to_double());
    }
  }
}

TEST(BinomialDouble, OutOfRangeIsZero) {
  EXPECT_DOUBLE_EQ(binomial_double(3, 7), 0.0);
}

TEST(InverseFactorialDouble, MatchesExact) {
  for (std::uint32_t n = 0; n <= 25; ++n) {
    // The sequential-division evaluation differs from the correctly rounded
    // exact value by at most a few ulp.
    EXPECT_NEAR(inverse_factorial_double(n), inverse_factorial(n).to_double(),
                4e-16 * inverse_factorial(n).to_double());
  }
}

TEST(InverseFactorialDouble, UnderflowsToZeroGracefully) {
  EXPECT_EQ(inverse_factorial_double(500), 0.0);
}

}  // namespace
}  // namespace ddm::combinat
