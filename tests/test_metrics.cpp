// Tests for the symbolic CDF (prob/cdf_poly) and expected-overflow metrics.
#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/protocol.hpp"
#include "prob/cdf_poly.hpp"
#include "prob/rng.hpp"
#include "prob/uniform_sum.hpp"

namespace ddm {
namespace {

using util::Rational;

std::vector<Rational> rvec(std::initializer_list<Rational> values) { return {values}; }

// ---------------------------------------------------------------------------
// sum_uniform_cdf_poly
// ---------------------------------------------------------------------------

TEST(CdfPoly, MatchesPointwiseEvaluator) {
  const auto pi = rvec({Rational(1, 2), Rational(2, 3), Rational{1}});
  const auto cdf = prob::sum_uniform_cdf_poly(pi);
  for (int i = 0; i <= 26; ++i) {
    const Rational x{i, 12};
    EXPECT_EQ(cdf(x), prob::sum_uniform_cdf(pi, x)) << "x=" << x;
  }
}

TEST(CdfPoly, SingleUniform) {
  const auto cdf = prob::sum_uniform_cdf_poly(rvec({Rational(1, 2)}));
  EXPECT_EQ(cdf(Rational{0}), Rational{0});
  EXPECT_EQ(cdf(Rational(1, 4)), Rational(1, 2));
  EXPECT_EQ(cdf(Rational(1, 2)), Rational{1});
  EXPECT_TRUE(cdf.is_continuous());
}

TEST(CdfPoly, IrwinHallPieces) {
  // Two unit uniforms: F = t²/2 on [0,1], −t²/2 + 2t − 1 on [1,2].
  const auto cdf = prob::sum_uniform_cdf_poly(rvec({Rational{1}, Rational{1}}));
  ASSERT_EQ(cdf.pieces().size(), 2u);
  EXPECT_EQ(cdf.pieces()[0].poly,
            (poly::QPoly{std::vector<Rational>{Rational{0}, Rational{0}, Rational(1, 2)}}));
  EXPECT_EQ(cdf.pieces()[1].poly,
            (poly::QPoly{std::vector<Rational>{Rational{-1}, Rational{2}, Rational(-1, 2)}}));
  EXPECT_TRUE(cdf.is_continuous());
}

TEST(CdfPoly, ContinuousAndMonotoneForRandomRanges) {
  const auto pi = rvec({Rational(1, 3), Rational(2, 5), Rational(3, 4), Rational(1, 2)});
  const auto cdf = prob::sum_uniform_cdf_poly(pi);
  EXPECT_TRUE(cdf.is_continuous());
  Rational previous{-1};
  for (int i = 0; i <= 30; ++i) {
    const Rational x = cdf.domain_hi() * Rational{i, 30};
    const Rational value = cdf(x);
    EXPECT_GE(value, previous);
    previous = value;
  }
  EXPECT_EQ(cdf(cdf.domain_hi()), Rational{1});
  EXPECT_EQ(cdf(Rational{0}), Rational{0});
}

TEST(CdfPoly, Validation) {
  EXPECT_THROW((void)prob::sum_uniform_cdf_poly(std::vector<Rational>{}),
               std::invalid_argument);
  EXPECT_THROW((void)prob::sum_uniform_cdf_poly(rvec({Rational{0}})), std::invalid_argument);
  EXPECT_THROW((void)prob::sum_uniform_cdf_poly(std::vector<Rational>(11, Rational{1})),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// expected_excess
// ---------------------------------------------------------------------------

TEST(ExpectedExcess, SingleUniformClosedForm) {
  // X ~ U[0,1]: E[(X−t)^+] = (1−t)²/2 for t in [0,1].
  for (int i = 0; i <= 4; ++i) {
    const Rational t{i, 4};
    const Rational expected = (Rational{1} - t).pow(2) * Rational{1, 2};
    EXPECT_EQ(prob::expected_excess(rvec({Rational{1}}), t), expected) << t;
  }
}

TEST(ExpectedExcess, BoundaryBehaviour) {
  const auto pi = rvec({Rational(1, 2), Rational(3, 4)});
  // Above the support: zero. At/below zero: mean − t.
  EXPECT_EQ(prob::expected_excess(pi, Rational{2}), Rational{0});
  EXPECT_EQ(prob::expected_excess(pi, Rational(5, 4)), Rational{0});
  EXPECT_EQ(prob::expected_excess(pi, Rational{0}), Rational(5, 8));
  EXPECT_EQ(prob::expected_excess(pi, Rational{-1}), Rational(13, 8));
  EXPECT_EQ(prob::expected_excess(std::vector<Rational>{}, Rational{1}), Rational{0});
}

TEST(ExpectedExcess, MonotoneDecreasingInT) {
  const auto pi = rvec({Rational(1, 2), Rational{1}, Rational(1, 3)});
  Rational previous{999};
  for (int i = 0; i <= 22; ++i) {
    const Rational t{i, 12};
    const Rational e = prob::expected_excess(pi, t);
    EXPECT_LE(e, previous);
    EXPECT_GE(e, Rational{0});
    previous = e;
  }
}

TEST(ExpectedExcess, MatchesMonteCarlo) {
  const std::vector<Rational> pi = rvec({Rational(1, 2), Rational{1}});
  const Rational t{3, 4};
  const double exact = prob::expected_excess(pi, t).to_double();
  prob::Rng rng{5511};
  double total = 0.0;
  const int trials = 500000;
  for (int i = 0; i < trials; ++i) {
    const double x = rng.uniform(0.0, 0.5) + rng.uniform();
    total += std::max(0.0, x - 0.75);
  }
  EXPECT_NEAR(total / trials, exact, 2e-3);
}

// ---------------------------------------------------------------------------
// expected overflow of protocols
// ---------------------------------------------------------------------------

TEST(ExpectedOverflow, ObliviousMatchesSimulation) {
  const std::vector<Rational> alpha{Rational(1, 3), Rational(1, 2), Rational(3, 4)};
  const Rational t{1};
  const double exact = core::expected_overflow_oblivious(alpha, t).to_double();
  prob::Rng rng{8181};
  const core::ObliviousProtocol protocol{alpha};
  double total = 0.0;
  const int trials = 400000;
  std::vector<double> inputs(3);
  for (int i = 0; i < trials; ++i) {
    for (double& x : inputs) x = rng.uniform();
    const auto loads = core::play(protocol, inputs, rng);
    total += std::max(0.0, loads.bin0 - 1.0) + std::max(0.0, loads.bin1 - 1.0);
  }
  EXPECT_NEAR(total / trials, exact, 3e-3);
}

TEST(ExpectedOverflow, ThresholdMatchesSimulation) {
  const Rational beta{622, 1000};
  const Rational t{1};
  const double exact =
      core::expected_overflow_symmetric_threshold(3, beta, t).to_double();
  prob::Rng rng{9292};
  const auto protocol = core::SingleThresholdProtocol::symmetric(3, beta);
  double total = 0.0;
  const int trials = 400000;
  std::vector<double> inputs(3);
  for (int i = 0; i < trials; ++i) {
    for (double& x : inputs) x = rng.uniform();
    const auto loads = core::play(protocol, inputs, rng);
    total += std::max(0.0, loads.bin0 - 1.0) + std::max(0.0, loads.bin1 - 1.0);
  }
  EXPECT_NEAR(total / trials, exact, 3e-3);
}

TEST(ExpectedOverflow, DegenerateThresholds) {
  // β = 0 or 1: everyone in one bin — overflow is the excess of IH_n above t.
  const Rational t{1};
  const std::vector<Rational> unit(3, Rational{1});
  const Rational all_one_bin = prob::expected_excess(unit, t);
  EXPECT_EQ(core::expected_overflow_symmetric_threshold(3, Rational{0}, t), all_one_bin);
  EXPECT_EQ(core::expected_overflow_symmetric_threshold(3, Rational{1}, t), all_one_bin);
}

TEST(ExpectedOverflow, LargeCapacityGivesZero) {
  EXPECT_EQ(core::expected_overflow_symmetric_threshold(4, Rational(1, 2), Rational{4}),
            Rational{0});
  const std::vector<Rational> half(4, Rational(1, 2));
  EXPECT_EQ(core::expected_overflow_oblivious(half, Rational{4}), Rational{0});
}

TEST(ExpectedOverflow, Validation) {
  EXPECT_THROW((void)core::expected_overflow_oblivious(std::vector<Rational>{}, Rational{1}),
               std::invalid_argument);
  EXPECT_THROW((void)core::expected_overflow_symmetric_threshold(0, Rational(1, 2), Rational{1}),
               std::invalid_argument);
  EXPECT_THROW((void)core::expected_overflow_symmetric_threshold(3, Rational{2}, Rational{1}),
               std::invalid_argument);
}

TEST(ExpectedOverflow, ObjectivesCanDisagree) {
  // The win-probability-optimal threshold need not minimize expected
  // overflow; record the exact values at n = 3, t = 1 so any future change
  // in the relationship is caught.
  const Rational at_optimum =
      core::expected_overflow_symmetric_threshold(3, Rational{622, 1000}, Rational{1});
  const Rational at_half =
      core::expected_overflow_symmetric_threshold(3, Rational(1, 2), Rational{1});
  EXPECT_GT(at_optimum, Rational{0});
  EXPECT_GT(at_half, Rational{0});
  // The probability-optimal 0.622 also has LOWER expected overflow than 1/2
  // at this instance (both objectives prefer it).
  EXPECT_LT(at_optimum, at_half);
}

}  // namespace
}  // namespace ddm
