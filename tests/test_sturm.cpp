// Tests for Sturm sequences — exact real-root counting.
#include "poly/sturm.hpp"

#include <gtest/gtest.h>

namespace ddm::poly {
namespace {

using util::Rational;

QPoly make(std::initializer_list<std::int64_t> coeffs_low_first) {
  std::vector<Rational> coeffs;
  for (const std::int64_t c : coeffs_low_first) coeffs.emplace_back(c);
  return QPoly{std::move(coeffs)};
}

TEST(Sturm, QuadraticWithTwoRoots) {
  // x² − 3x + 2 has roots 1 and 2.
  const SturmSequence s{make({2, -3, 1})};
  EXPECT_EQ(s.count_all_roots(), 2);
  EXPECT_EQ(s.count_roots(Rational{0}, Rational{3}), 2);
  EXPECT_EQ(s.count_roots(Rational{0}, Rational(3, 2)), 1);
  EXPECT_EQ(s.count_roots(Rational(3, 2), Rational{3}), 1);
  EXPECT_EQ(s.count_roots(Rational{5}, Rational{9}), 0);
}

TEST(Sturm, CountIsHalfOpenOnTheLeft) {
  // Root exactly at an endpoint: (a, b] includes b, excludes a.
  const SturmSequence s{make({-1, 1})};  // root at 1
  EXPECT_EQ(s.count_roots(Rational{0}, Rational{1}), 1);   // 1 ∈ (0, 1]
  EXPECT_EQ(s.count_roots(Rational{1}, Rational{2}), 0);   // 1 ∉ (1, 2]
}

TEST(Sturm, NoRealRoots) {
  const SturmSequence s{make({1, 0, 1})};  // x² + 1
  EXPECT_EQ(s.count_all_roots(), 0);
  EXPECT_EQ(s.count_roots(Rational{-10}, Rational{10}), 0);
}

TEST(Sturm, CubicWithThreeRoots) {
  // (x+1)x(x−1) = x³ − x
  const SturmSequence s{make({0, -1, 0, 1})};
  EXPECT_EQ(s.count_all_roots(), 3);
  EXPECT_EQ(s.count_roots(Rational(-1, 2), Rational(1, 2)), 1);  // only 0
}

TEST(Sturm, MultipleRootsCountedOnce) {
  // (x − 1)² x — Sturm counts distinct roots: {0, 1}.
  const QPoly p = make({-1, 1}) * make({-1, 1}) * make({0, 1});
  const SturmSequence s{p};
  EXPECT_EQ(s.count_all_roots(), 2);
}

TEST(Sturm, PaperOptimalityConditionN3) {
  // 21/2 β² − 21 β + 9  (∝ β² − 2β + 6/7): exactly one root in (1/2, 1],
  // the optimal threshold 1 − sqrt(1/7) (Section 5.2.1).
  const QPoly condition{std::vector<Rational>{Rational{9}, Rational{-21}, Rational(21, 2)}};
  const SturmSequence s{condition};
  EXPECT_EQ(s.count_all_roots(), 2);
  EXPECT_EQ(s.count_roots(Rational(1, 2), Rational{1}), 1);
  EXPECT_EQ(s.count_roots(Rational{0}, Rational(1, 2)), 0);
  EXPECT_EQ(s.count_roots(Rational{1}, Rational{2}), 1);  // 1 + sqrt(1/7)
}

TEST(Sturm, PaperOptimalityConditionN4) {
  // −26/3 β³ + 98/3 β² − 368/9 β + 416/27 (sign-corrected from the paper):
  // exactly one real root in (0, 1], at β ≈ 0.678 (Section 5.2.2).
  const QPoly condition{std::vector<Rational>{Rational(416, 27), Rational(-368, 9),
                                              Rational(98, 3), Rational(-26, 3)}};
  const SturmSequence s{condition};
  EXPECT_EQ(s.count_roots(Rational{0}, Rational{1}), 1);
  EXPECT_EQ(s.count_roots(Rational(2, 3), Rational{1}), 1);
}

TEST(Sturm, LinearAndConstant) {
  EXPECT_EQ(SturmSequence{make({-4, 2})}.count_all_roots(), 1);
  EXPECT_EQ(SturmSequence{make({7})}.count_all_roots(), 0);
  EXPECT_EQ(SturmSequence{QPoly{}}.count_all_roots(), 0);
}

TEST(Sturm, SignChangesAtRootOfChainMember) {
  // Evaluating the chain exactly at a root of p itself must still give
  // consistent counts on both sides.
  const SturmSequence s{make({0, -1, 0, 1})};  // roots -1, 0, 1
  EXPECT_EQ(s.count_roots(Rational{-1}, Rational{1}), 2);  // (−1, 1] ∋ {0, 1}
  EXPECT_EQ(s.count_roots(Rational{-2}, Rational{1}), 3);
}

TEST(Sturm, InvalidIntervalThrows) {
  const SturmSequence s{make({-1, 1})};
  EXPECT_THROW((void)s.count_roots(Rational{2}, Rational{1}), std::invalid_argument);
}

TEST(CauchyBound, BoundsAllRoots) {
  // x² − 3x + 2: roots 1, 2. Bound = 1 + 3 = 4.
  EXPECT_EQ(cauchy_root_bound(make({2, -3, 1})), Rational{4});
  // Scaling the polynomial doesn't change its roots; bound stays valid.
  const QPoly scaled = make({2, -3, 1}) * Rational(1, 7);
  EXPECT_GE(cauchy_root_bound(scaled), Rational{2});
  EXPECT_THROW((void)cauchy_root_bound(QPoly{}), std::invalid_argument);
}

TEST(Sturm, ChainEndsAtGcd) {
  // For square-free p, the chain's last element is a nonzero constant.
  const SturmSequence s{make({2, -3, 1})};
  ASSERT_FALSE(s.chain().empty());
  EXPECT_EQ(s.chain().back().degree(), 0);
}

}  // namespace
}  // namespace ddm::poly
