// Tests for deterministic fault injection (util/fault.hpp) and the retrying
// parallel engine (util/parallel.hpp): the plan grammar, the fault matrix
// (throw / nan-poison / delay directives × worker caps, asserting results
// bit-identical to a fault-free run after transient retry), retry exhaustion
// surfacing ddm::ParallelError with the failing chunk, and non-transient
// exceptions passing through without retry. The ctest registrations in
// tests/CMakeLists.txt additionally re-run the matrix under DDM_THREADS=1
// and DDM_THREADS=4, and exercise plan loading from DDM_FAULT_PLAN.
#include "util/fault.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/nonoblivious.hpp"
#include "util/parallel.hpp"
#include "util/status.hpp"

namespace ddm::util {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::clear_plan(); }
};

TEST_F(FaultTest, ParsesSingleThrowDirective) {
  const auto plan = fault::Plan::parse("throw@3");
  ASSERT_EQ(plan.directives.size(), 1u);
  EXPECT_EQ(plan.directives[0].kind, fault::Kind::kThrow);
  EXPECT_EQ(plan.directives[0].chunk, 3u);
  EXPECT_EQ(plan.directives[0].count, 1u);
}

TEST_F(FaultTest, ParsesCountsMillisAndCompounds) {
  const auto plan = fault::Plan::parse("nan@0x2,delay@5:50ms,throw@1");
  ASSERT_EQ(plan.directives.size(), 3u);
  EXPECT_EQ(plan.directives[0].kind, fault::Kind::kNanPoison);
  EXPECT_EQ(plan.directives[0].chunk, 0u);
  EXPECT_EQ(plan.directives[0].count, 2u);
  EXPECT_EQ(plan.directives[1].kind, fault::Kind::kDelay);
  EXPECT_EQ(plan.directives[1].chunk, 5u);
  EXPECT_EQ(plan.directives[1].millis, 50u);
  EXPECT_EQ(plan.directives[2].kind, fault::Kind::kThrow);
}

TEST_F(FaultTest, RejectsMalformedPlansNamingTheDirective) {
  EXPECT_THROW((void)fault::Plan::parse(""), FaultPlanError);
  EXPECT_THROW((void)fault::Plan::parse("boom@1"), FaultPlanError);
  EXPECT_THROW((void)fault::Plan::parse("throw@"), FaultPlanError);
  EXPECT_THROW((void)fault::Plan::parse("throw@1y"), FaultPlanError);
  EXPECT_THROW((void)fault::Plan::parse("throw@1x0"), FaultPlanError);
  EXPECT_THROW((void)fault::Plan::parse("delay@1:5"), FaultPlanError);
  EXPECT_THROW((void)fault::Plan::parse("throw@1,,nan@2"), FaultPlanError);
  try {
    (void)fault::Plan::parse("nan@7extra");
    FAIL() << "expected FaultPlanError";
  } catch (const FaultPlanError& error) {
    EXPECT_NE(std::string(error.what()).find("nan@7extra"), std::string::npos);
  }
}

// Minimal cooperating kernel: fills out[i] deterministically, poisons its
// chunk's first output when a nan directive fires, and validates finiteness —
// the same shape threshold_winning_probability_batch uses in production.
constexpr std::size_t kBatchSize = 64;
constexpr std::size_t kBatchGrain = 4;

std::vector<double> run_batch(unsigned max_workers) {
  std::vector<double> out(kBatchSize, 0.0);
  ParallelOptions options;
  options.grain = kBatchGrain;
  options.max_workers = max_workers;
  options.label = "fault_batch";
  options.validate = [&out](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (!std::isfinite(out[i])) return false;
    }
    return true;
  };
  parallel_for(
      0, kBatchSize,
      [&out](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = 1.0 / (1.0 + static_cast<double>(i));
        }
        if (fault::active() && fault::consume_nan(lo / kBatchGrain)) {
          out[lo] = std::numeric_limits<double>::quiet_NaN();
        }
      },
      options);
  return out;
}

TEST_F(FaultTest, MatrixBitIdenticalAfterTransientFaults) {
  fault::clear_plan();
  const std::vector<double> baseline = run_batch(0);
  const char* plans[] = {"throw@3",    "throw@0x2",  "nan@2",
                         "nan@5x2",    "delay@1:1ms", "throw@2,nan@7,delay@0:1ms"};
  for (const char* plan : plans) {
    for (const unsigned workers : {1u, 4u, 0u}) {
      fault::set_plan(fault::Plan::parse(plan));
      EXPECT_EQ(run_batch(workers), baseline) << "plan=" << plan << " workers=" << workers;
      EXPECT_FALSE(fault::active()) << "plan should be fully consumed: " << plan;
    }
  }
}

TEST_F(FaultTest, CountersRecordEveryInjection) {
  const auto before = fault::counters();
  fault::set_plan(fault::Plan::parse("throw@1,nan@2,delay@3:1ms"));
  (void)run_batch(2);
  const auto after = fault::counters();
  EXPECT_EQ(after.throws_injected, before.throws_injected + 1);
  EXPECT_EQ(after.nans_injected, before.nans_injected + 1);
  EXPECT_EQ(after.delays_injected, before.delays_injected + 1);
}

TEST_F(FaultTest, ExhaustedRetriesRaiseParallelErrorNamingChunk) {
  for (const unsigned workers : {1u, 4u}) {
    fault::set_plan(fault::Plan::parse("throw@2x10"));  // outlives the retry budget
    try {
      (void)run_batch(workers);
      FAIL() << "expected ParallelError (workers=" << workers << ")";
    } catch (const ParallelError& error) {
      EXPECT_EQ(error.chunk(), 2u);
      EXPECT_EQ(error.chunk_begin(), 8u);
      EXPECT_EQ(error.chunk_end(), 12u);
      EXPECT_EQ(error.attempts(), 3u);  // 1 + default max_retries of 2
      EXPECT_EQ(error.label(), "fault_batch");
      EXPECT_NE(error.cause().find("injected"), std::string::npos);
      EXPECT_NE(std::string(error.what()).find("chunk 2"), std::string::npos);
    }
  }
}

TEST_F(FaultTest, ValidationRejectionRetriesThenFails) {
  ParallelOptions options;
  options.label = "always_bad";
  options.retry.max_retries = 1;
  options.grain = 4;
  options.validate = [](std::size_t, std::size_t) { return false; };
  std::atomic<int> calls{0};
  try {
    parallel_for(0, 4, [&](std::size_t, std::size_t) { ++calls; }, options);
    FAIL() << "expected ParallelError";
  } catch (const ParallelError& error) {
    EXPECT_EQ(error.attempts(), 2u);
    EXPECT_EQ(error.label(), "always_bad");
    EXPECT_NE(error.cause().find("validation"), std::string::npos);
  }
  EXPECT_EQ(calls.load(), 2);  // one initial attempt + one retry
}

TEST_F(FaultTest, NonTransientExceptionsAreNotRetried) {
  ParallelOptions options;
  options.retry.max_retries = 5;
  options.grain = 8;
  std::atomic<int> calls{0};
  EXPECT_THROW(parallel_for(
                   0, 8,
                   [&](std::size_t, std::size_t) {
                     ++calls;
                     throw std::logic_error("permanent");
                   },
                   options),
               std::logic_error);
  EXPECT_EQ(calls.load(), 1);
}

TEST_F(FaultTest, BatchEvaluatorRecoversFromInjectedFaults) {
  // End-to-end through the production wiring in
  // core::threshold_winning_probability_batch: chunks carry
  // core::kThresholdBatchBlock points, so the chunk ordinal a directive
  // addresses is first_point_index / kThresholdBatchBlock. 40 points span
  // chunk ordinals 0, 1, and 2.
  std::vector<std::vector<double>> points;
  for (int k = 0; k < 40; ++k) {
    points.push_back(std::vector<double>(3, 0.02 + 0.023 * static_cast<double>(k)));
  }
  ASSERT_GT(points.size(), 2 * core::kThresholdBatchBlock);
  const std::vector<double> baseline = core::threshold_winning_probability_batch(points, 1.0);
  const auto before = fault::counters();
  fault::set_plan(fault::Plan::parse("nan@1x2,throw@2"));
  const std::vector<double> faulted = core::threshold_winning_probability_batch(points, 1.0);
  EXPECT_EQ(faulted, baseline);
  const auto after = fault::counters();
  EXPECT_EQ(after.nans_injected, before.nans_injected + 2);
  EXPECT_EQ(after.throws_injected, before.throws_injected + 1);
}

// Runs only under the dedicated ctest registration that sets DDM_FAULT_PLAN
// (fault_env_plan in tests/CMakeLists.txt); skipped otherwise so the regular
// discovery run stays fault-free.
TEST(FaultEnv, LoadsPlanFromEnvironment) {
  if (std::getenv("DDM_FAULT_PLAN") == nullptr) {
    GTEST_SKIP() << "DDM_FAULT_PLAN not set for this registration";
  }
  const auto before = fault::counters();
  std::vector<double> out(8, 0.0);
  parallel_for(0, 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = static_cast<double>(i);
  });
  EXPECT_GT(fault::counters().throws_injected, before.throws_injected);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<double>(i)) << i;
  }
}

}  // namespace
}  // namespace ddm::util
