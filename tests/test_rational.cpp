// Tests for util::Rational — exact rational arithmetic.
#include "util/rational.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <sstream>

namespace ddm::util {
namespace {

TEST(Rational, DefaultIsZero) {
  const Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.to_string(), "0");
  EXPECT_TRUE(r.is_integer());
}

TEST(Rational, NormalizationLowestTerms) {
  EXPECT_EQ(Rational(6, 8).to_string(), "3/4");
  EXPECT_EQ(Rational(8, 4).to_string(), "2");
  EXPECT_EQ(Rational(0, 7).to_string(), "0");
}

TEST(Rational, NormalizationSign) {
  EXPECT_EQ(Rational(1, -2).to_string(), "-1/2");
  EXPECT_EQ(Rational(-1, -2).to_string(), "1/2");
  EXPECT_EQ(Rational(-1, 2).to_string(), "-1/2");
  EXPECT_GT(Rational(1, -2).den(), BigInt{0});
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::domain_error);
}

TEST(Rational, Parse) {
  EXPECT_EQ(Rational::parse("3/4"), Rational(3, 4));
  EXPECT_EQ(Rational::parse("-3/4"), Rational(-3, 4));
  EXPECT_EQ(Rational::parse("42"), Rational{42});
  EXPECT_EQ(Rational::parse("4318/1215").to_string(), "4318/1215");
  EXPECT_THROW(Rational::parse("a/b"), std::invalid_argument);
  EXPECT_THROW(Rational::parse("1/0"), std::domain_error);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational{2});
  EXPECT_EQ(Rational(1, 3) + Rational(2, 3), Rational{1});
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational{1} / Rational{0}, std::domain_error);
  EXPECT_THROW(Rational{0}.inverse(), std::domain_error);
}

TEST(Rational, PaperCoefficientsArithmetic) {
  // The n = 3, t = 1 case analysis: the two pieces must agree at β = 1/2.
  // Piece A: 1/6 + (3/2)β² − (1/2)β³ ; Piece B: −11/6 + 9β − (21/2)β² + (7/2)β³.
  const Rational beta{1, 2};
  const Rational a = Rational(1, 6) + Rational(3, 2) * beta.pow(2) - Rational(1, 2) * beta.pow(3);
  const Rational b = Rational(-11, 6) + Rational{9} * beta - Rational(21, 2) * beta.pow(2) +
                     Rational(7, 2) * beta.pow(3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, Rational(23, 48));
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LT(Rational(-1, 2), Rational{0});
  EXPECT_GT(Rational(2, 3), Rational(1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LE(Rational(1, 2), Rational(1, 2));
}

TEST(Rational, Negation) {
  EXPECT_EQ((-Rational(1, 2)).to_string(), "-1/2");
  EXPECT_EQ((-Rational{0}).to_string(), "0");
}

TEST(Rational, AbsAndSignum) {
  EXPECT_EQ(Rational(-3, 4).abs(), Rational(3, 4));
  EXPECT_EQ(Rational(-3, 4).signum(), -1);
  EXPECT_EQ(Rational(3, 4).signum(), 1);
  EXPECT_EQ(Rational{0}.signum(), 0);
}

TEST(Rational, Inverse) {
  EXPECT_EQ(Rational(3, 4).inverse(), Rational(4, 3));
  EXPECT_EQ(Rational(-3, 4).inverse(), Rational(-4, 3));
}

TEST(Rational, Pow) {
  EXPECT_EQ(Rational(2, 3).pow(3), Rational(8, 27));
  EXPECT_EQ(Rational(2, 3).pow(0), Rational{1});
  EXPECT_EQ(Rational(2, 3).pow(-2), Rational(9, 4));
  EXPECT_EQ(Rational{0}.pow(0), Rational{1});  // 0^0 == 1 convention
  EXPECT_EQ(Rational{0}.pow(3), Rational{0});
  EXPECT_THROW(Rational{0}.pow(-1), std::domain_error);
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor().to_string(), "3");
  EXPECT_EQ(Rational(7, 2).ceil().to_string(), "4");
  EXPECT_EQ(Rational(-7, 2).floor().to_string(), "-4");
  EXPECT_EQ(Rational(-7, 2).ceil().to_string(), "-3");
  EXPECT_EQ(Rational{5}.floor().to_string(), "5");
  EXPECT_EQ(Rational{5}.ceil().to_string(), "5");
  EXPECT_EQ(Rational{-5}.floor().to_string(), "-5");
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-1, 4).to_double(), -0.25);
  EXPECT_NEAR(Rational(1, 3).to_double(), 1.0 / 3.0, 1e-15);
  // Huge numerator/denominator pair still produces a finite sensible value.
  const Rational big{BigInt::pow(BigInt{7}, 500), BigInt::pow(BigInt{7}, 500) * BigInt{2}};
  EXPECT_DOUBLE_EQ(big.to_double(), 0.5);
}

TEST(Rational, FieldAxiomsRandomized) {
  std::mt19937_64 gen{99};
  const auto random_rational = [&gen] {
    const std::int64_t num = static_cast<std::int64_t>(gen() % 2001) - 1000;
    const std::int64_t den = 1 + static_cast<std::int64_t>(gen() % 1000);
    return Rational{num, den};
  };
  for (int iter = 0; iter < 200; ++iter) {
    const Rational a = random_rational();
    const Rational b = random_rational();
    const Rational c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + (-a), Rational{0});
    if (!a.is_zero()) EXPECT_EQ(a * a.inverse(), Rational{1});
  }
}

TEST(Rational, SelfAliasedOperations) {
  // Regression: dividing by a reference into the object itself (e.g. a
  // polynomial normalizing by its own leading coefficient) must not read
  // partially updated state.
  Rational a{-2, 9};
  const Rational& self = a;
  a /= self;
  EXPECT_EQ(a, Rational{1});
  Rational b{3, 4};
  b *= b;
  EXPECT_EQ(b, Rational(9, 16));
  Rational c{5, 7};
  c -= c;
  EXPECT_TRUE(c.is_zero());
  Rational d{5, 7};
  d += d;
  EXPECT_EQ(d, Rational(10, 7));
}

TEST(Rational, StreamOutput) {
  std::ostringstream oss;
  oss << Rational(-22, 7);
  EXPECT_EQ(oss.str(), "-22/7");
}

TEST(Rational, RatHelper) {
  EXPECT_EQ(rat(3, 4), Rational(3, 4));
  EXPECT_EQ(rat(5), Rational{5});
}

TEST(Rational, FromDoubleIsExact) {
  EXPECT_EQ(Rational::from_double(0.0), Rational{});
  EXPECT_EQ(Rational::from_double(1.0), Rational{1});
  EXPECT_EQ(Rational::from_double(0.5), Rational(1, 2));
  EXPECT_EQ(Rational::from_double(-0.75), Rational(-3, 4));
  // 0.1 is NOT 1/10: the conversion must produce the dyadic the double
  // actually holds.
  EXPECT_EQ(Rational::from_double(0.1),
            Rational(BigInt{std::int64_t{3602879701896397}},
                     BigInt::pow(BigInt{2}, 55)));
  EXPECT_NE(Rational::from_double(0.1), Rational(1, 10));
  // Round-trip: every finite double is a dyadic rational, so converting back
  // must be lossless.
  std::mt19937_64 rng{31337};
  std::uniform_real_distribution<double> dist(-1e6, 1e6);
  for (int k = 0; k < 200; ++k) {
    const double x = dist(rng);
    EXPECT_EQ(Rational::from_double(x).to_double(), x);
  }
  // Subnormal: the conversion itself stays exact (to_double underflows for
  // magnitudes this small, so compare the rational, not a round-trip).
  EXPECT_EQ(Rational::from_double(std::ldexp(1.0, -1060)),
            Rational(BigInt{1}, BigInt::pow(BigInt{2}, 1060)));
  EXPECT_THROW((void)Rational::from_double(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW((void)Rational::from_double(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

}  // namespace
}  // namespace ddm::util
