// Tests for exact rational interval arithmetic and the interval Horner
// evaluation behind the certified maximizer.
#include "util/interval.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "poly/polynomial.hpp"

namespace ddm::util {
namespace {

RationalInterval iv(std::int64_t lo_num, std::int64_t lo_den, std::int64_t hi_num,
                    std::int64_t hi_den) {
  return RationalInterval{Rational{lo_num, lo_den}, Rational{hi_num, hi_den}};
}

TEST(Interval, ConstructionAndAccessors) {
  const RationalInterval point{Rational(1, 2)};
  EXPECT_TRUE(point.is_point());
  EXPECT_EQ(point.width(), Rational{0});
  EXPECT_EQ(point.midpoint(), Rational(1, 2));

  const RationalInterval range = iv(1, 3, 2, 3);
  EXPECT_FALSE(range.is_point());
  EXPECT_EQ(range.width(), Rational(1, 3));
  EXPECT_EQ(range.midpoint(), Rational(1, 2));
  EXPECT_TRUE(range.contains(Rational(1, 2)));
  EXPECT_FALSE(range.contains(Rational(1, 4)));

  EXPECT_THROW(RationalInterval(Rational{1}, Rational{0}), std::invalid_argument);
}

TEST(Interval, ContainsZero) {
  EXPECT_TRUE(iv(-1, 2, 1, 2).contains_zero());
  EXPECT_TRUE(iv(0, 1, 1, 1).contains_zero());
  EXPECT_FALSE(iv(1, 4, 1, 2).contains_zero());
  EXPECT_FALSE(iv(-1, 2, -1, 4).contains_zero());
}

TEST(Interval, Addition) {
  EXPECT_EQ(iv(0, 1, 1, 1) + iv(1, 2, 3, 2), iv(1, 2, 5, 2));
}

TEST(Interval, SubtractionIsConservative) {
  // [0,1] − [0,1] = [−1, 1] (dependency is not tracked — by design).
  EXPECT_EQ(iv(0, 1, 1, 1) - iv(0, 1, 1, 1), iv(-1, 1, 1, 1));
}

TEST(Interval, MultiplicationSignCases) {
  EXPECT_EQ(iv(1, 1, 2, 1) * iv(3, 1, 4, 1), iv(3, 1, 8, 1));       // + * +
  EXPECT_EQ(iv(-2, 1, -1, 1) * iv(3, 1, 4, 1), iv(-8, 1, -3, 1));   // − * +
  EXPECT_EQ(iv(-2, 1, 3, 1) * iv(-1, 1, 4, 1), iv(-8, 1, 12, 1));   // mixed
  EXPECT_EQ(iv(-2, 1, -1, 1) * iv(-4, 1, -3, 1), iv(3, 1, 8, 1));   // − * −
}

TEST(Interval, Negation) { EXPECT_EQ(-iv(-1, 2, 3, 4), iv(-3, 4, 1, 2)); }

TEST(Interval, OrderingPredicates) {
  EXPECT_TRUE(iv(0, 1, 1, 2).certainly_less_than(iv(3, 4, 1, 1)));
  EXPECT_FALSE(iv(0, 1, 1, 2).certainly_less_than(iv(1, 2, 1, 1)));  // touching
  EXPECT_TRUE(iv(0, 1, 1, 2).overlaps(iv(1, 2, 1, 1)));
  EXPECT_FALSE(iv(0, 1, 1, 4).overlaps(iv(1, 2, 1, 1)));
}

TEST(Interval, InclusionPropertyUnderArithmetic) {
  // Fundamental soundness: x ∈ X, y ∈ Y ⇒ x∘y ∈ X∘Y.
  const RationalInterval x = iv(-1, 3, 1, 2);
  const RationalInterval y = iv(1, 5, 4, 5);
  for (int i = 0; i <= 4; ++i) {
    for (int j = 0; j <= 4; ++j) {
      const Rational px = x.lo() + x.width() * Rational{i, 4};
      const Rational py = y.lo() + y.width() * Rational{j, 4};
      EXPECT_TRUE((x + y).contains(px + py));
      EXPECT_TRUE((x - y).contains(px - py));
      EXPECT_TRUE((x * y).contains(px * py));
    }
  }
}

TEST(Interval, StreamAndToString) {
  std::ostringstream oss;
  oss << iv(1, 2, 3, 4);
  EXPECT_EQ(oss.str(), "[1/2, 3/4]");
}

TEST(IntervalHorner, EnclosesRangeOfPolynomial) {
  // p(x) = x² − x on [0, 1]: true range [−1/4, 0]; the interval extension
  // must enclose it (it may be wider).
  const poly::QPoly p{std::vector<Rational>{Rational{0}, Rational{-1}, Rational{1}}};
  const RationalInterval enclosure =
      poly::evaluate_interval(p, iv(0, 1, 1, 1));
  EXPECT_LE(enclosure.lo(), Rational(-1, 4));
  EXPECT_GE(enclosure.hi(), Rational{0});
  // Sampled values are inside.
  for (int i = 0; i <= 8; ++i) {
    EXPECT_TRUE(enclosure.contains(p(Rational{i, 8})));
  }
}

TEST(IntervalHorner, PointIntervalIsExact) {
  const poly::QPoly p{std::vector<Rational>{Rational(-11, 6), Rational{9}, Rational(-21, 2),
                                            Rational(7, 2)}};
  const Rational x{5, 8};
  const RationalInterval result = poly::evaluate_interval(p, RationalInterval{x});
  EXPECT_TRUE(result.is_point());
  EXPECT_EQ(result.lo(), p(x));
}

TEST(IntervalHorner, ShrinksWithInputWidth) {
  const poly::QPoly p{std::vector<Rational>{Rational{1}, Rational{-3}, Rational{2},
                                            Rational{5}}};
  Rational previous_width{-1};
  bool first = true;
  for (int k = 1; k <= 6; ++k) {
    const Rational half_width{1, 1 << (2 * k)};
    const RationalInterval x{Rational(1, 2) - half_width, Rational(1, 2) + half_width};
    const Rational width = poly::evaluate_interval(p, x).width();
    if (!first) EXPECT_LT(width, previous_width);
    previous_width = width;
    first = false;
  }
}

}  // namespace
}  // namespace ddm::util
