// Tests for the resilience layer: deadlines and cooperative cancellation
// (util/resilience.hpp) threaded through the parallel engine, the batch
// kernel, the escalation ladder, and the engine seam; deterministic retry
// backoff (RetryPolicy); strict DDM_SERVE_*-style env parsing
// (util/env.hpp); and the degradation chain of engine::evaluate_resilient
// (compiled -> batch under an injected lowering fault, certified -> mc under
// an exhausted parallel region). The ctest registrations in
// tests/CMakeLists.txt re-run the degradation-chain cases under
// DDM_THREADS=1 and DDM_THREADS=4.
#include "util/resilience.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "core/nonoblivious.hpp"
#include "engine/registry.hpp"
#include "engine/resilient.hpp"
#include "util/certify.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/interval.hpp"
#include "util/parallel.hpp"
#include "util/rational.hpp"
#include "util/status.hpp"

namespace ddm {
namespace {

using namespace std::chrono_literals;

TEST(CancelTokenTest, DefaultIsInertCreatedFires) {
  util::CancelToken inert;
  EXPECT_FALSE(inert.armed());
  inert.cancel();  // no-op, must not crash
  EXPECT_FALSE(inert.cancel_requested());

  util::CancelToken armed = util::CancelToken::create();
  util::CancelToken alias = armed;  // copies share the flag
  EXPECT_TRUE(armed.armed());
  EXPECT_FALSE(armed.cancel_requested());
  alias.cancel();
  EXPECT_TRUE(armed.cancel_requested());
}

TEST(DeadlineTest, UnsetNeverExpiresAndSetClamps) {
  util::Deadline unset;
  EXPECT_FALSE(unset.is_set());
  EXPECT_FALSE(unset.expired());
  EXPECT_EQ(unset.remaining(), std::chrono::nanoseconds::max());

  const util::Deadline spent = util::Deadline::after(-1ms);
  EXPECT_TRUE(spent.is_set());
  EXPECT_TRUE(spent.expired());
  EXPECT_EQ(spent.remaining(), std::chrono::nanoseconds::zero());

  const util::Deadline generous = util::Deadline::after(1h);
  EXPECT_FALSE(generous.expired());
  EXPECT_GT(generous.remaining(), 30min);
}

TEST(RunControlTest, CancellationWinsOverExpiredDeadline) {
  util::RunControl control;
  EXPECT_FALSE(control.engaged());
  EXPECT_EQ(control.should_stop(), util::StopReason::kNone);

  control.deadline = util::Deadline::after(-1ms);
  EXPECT_TRUE(control.engaged());
  EXPECT_EQ(control.should_stop(), util::StopReason::kDeadline);

  control.token = util::CancelToken::create();
  control.token.cancel();
  EXPECT_EQ(control.should_stop(), util::StopReason::kCancelled);
}

TEST(RetryPolicyTest, BackoffIsDeterministicExponentialAndClamped) {
  util::RetryPolicy policy;
  policy.base_delay = 10ms;
  policy.growth = 2.0;
  policy.max_delay = 35ms;
  policy.jitter = 0.0;
  EXPECT_EQ(policy.delay_before(1, 0), 10ms);
  EXPECT_EQ(policy.delay_before(2, 0), 20ms);
  EXPECT_EQ(policy.delay_before(3, 0), 35ms);  // 40ms clamped
  EXPECT_EQ(policy.delay_before(9, 0), 35ms);

  // Jitter: a pure function of (seed, stream, attempt) inside the band.
  policy.jitter = 0.25;
  const auto once = policy.delay_before(2, 7);
  EXPECT_EQ(once, policy.delay_before(2, 7));
  EXPECT_GE(once, 15ms);
  EXPECT_LT(once, 25ms);
  EXPECT_NE(policy.delay_before(2, 8), once);  // streams decorrelate

  // The library default never sleeps: zero base delay short-circuits.
  util::RetryPolicy immediate;
  EXPECT_EQ(immediate.delay_before(1, 0), std::chrono::nanoseconds::zero());
  EXPECT_EQ(immediate.delay_before(5, 3), std::chrono::nanoseconds::zero());
}

TEST(RetryPolicyTest, SleepWithDeadlineReturnsEarly) {
  const auto start = std::chrono::steady_clock::now();
  util::sleep_with_deadline(10s, util::Deadline::after(5ms));
  EXPECT_LT(std::chrono::steady_clock::now() - start, 2s);
  util::sleep_with_deadline(-5ms, util::Deadline{});  // non-positive: no-op
  EXPECT_LT(std::chrono::steady_clock::now() - start, 2s);
}

TEST(ParallelControlTest, MidRunCancellationReportsPartialProgress) {
  for (const unsigned workers : {1u, 4u}) {
    util::ParallelOptions options;
    options.grain = 1;
    options.max_workers = workers;
    options.label = "cancel_region";
    options.control.token = util::CancelToken::create();
    std::atomic<std::size_t> executed{0};
    const util::CancelToken token = options.control.token;
    try {
      util::parallel_for(
          0, 64,
          [&executed, &token](std::size_t, std::size_t) {
            executed.fetch_add(1);
            token.cancel();  // first chunk pulls the plug for everyone
          },
          options);
      FAIL() << "expected Cancelled (workers=" << workers << ")";
    } catch (const Cancelled& error) {
      EXPECT_EQ(error.label(), "cancel_region");
      EXPECT_EQ(error.total(), 64u);
      EXPECT_GE(error.completed(), 1u);
      EXPECT_LT(error.completed(), 64u);
      EXPECT_EQ(error.completed(), executed.load());
    }
  }
}

TEST(ParallelControlTest, ExpiredDeadlineStopsBeforeAnyChunk) {
  for (const unsigned workers : {1u, 4u}) {
    util::ParallelOptions options;
    options.grain = 4;
    options.max_workers = workers;
    options.label = "deadline_region";
    options.control.deadline = util::Deadline::after(-1ns);
    std::atomic<std::size_t> executed{0};
    try {
      util::parallel_for(
          0, 32, [&executed](std::size_t, std::size_t) { executed.fetch_add(1); }, options);
      FAIL() << "expected DeadlineExceeded (workers=" << workers << ")";
    } catch (const DeadlineExceeded& error) {
      EXPECT_EQ(error.label(), "deadline_region");
      EXPECT_EQ(error.completed(), 0u);
      EXPECT_EQ(error.total(), 8u);  // 32 indices / grain 4
      // The human-readable message carries the label too (regression: the
      // ctor once moved `label` into the base while the message expression
      // still read it — unspecified evaluation order left it empty).
      EXPECT_NE(std::string(error.what()).find("deadline_region"), std::string::npos)
          << error.what();
    }
    EXPECT_EQ(executed.load(), 0u);
  }
}

TEST(ParallelControlTest, BatchKernelSurfacesDeadline) {
  std::vector<std::vector<double>> points;
  for (int k = 0; k < 24; ++k) {
    points.push_back(std::vector<double>(4, 0.05 + 0.03 * static_cast<double>(k)));
  }
  util::RunControl control;
  control.deadline = util::Deadline::after(-1ms);
  EXPECT_THROW((void)core::threshold_winning_probability_batch(points, 1.0, control),
               DeadlineExceeded);
  // And the same call without control still answers in full.
  EXPECT_EQ(core::threshold_winning_probability_batch(points, 1.0).size(), points.size());
}

TEST(LadderControlTest, PollsBeforeEveryRung) {
  const std::vector<TierSpec> tiers = {
      {EvalTier::kCompensatedDouble,
       [] { return util::RationalInterval(util::Rational{0}, util::Rational{1}); }},
      {EvalTier::kExact, [] { return util::RationalInterval(util::Rational{1, 2}); }},
  };

  EvalPolicy spent;
  spent.control.deadline = util::Deadline::after(-1ms);
  try {
    (void)run_escalation_ladder(spent, "ladder_test", tiers);
    FAIL() << "expected DeadlineExceeded";
  } catch (const DeadlineExceeded& error) {
    EXPECT_EQ(error.completed(), 0u);  // no tier attempted
    EXPECT_EQ(error.total(), tiers.size());
  }

  // Cancel after the first (too-wide) rung: the pre-rung poll on the second
  // tier fires with one tier attempted.
  EvalPolicy cancelling;
  cancelling.control.token = util::CancelToken::create();
  const util::CancelToken token = cancelling.control.token;
  const std::vector<TierSpec> cancelling_tiers = {
      {EvalTier::kCompensatedDouble,
       [token] {
         token.cancel();
         return util::RationalInterval(util::Rational{0}, util::Rational{1});
       }},
      {EvalTier::kExact, [] { return util::RationalInterval(util::Rational{1, 2}); }},
  };
  try {
    (void)run_escalation_ladder(cancelling, "ladder_test", cancelling_tiers);
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& error) {
    EXPECT_EQ(error.completed(), 1u);
    EXPECT_EQ(error.total(), cancelling_tiers.size());
  }
}

TEST(EngineControlTest, EveryEngineSurfacesTypedStops) {
  for (const char* id : {"kernel", "batch", "mc", "certified", "compiled"}) {
    engine::EvalRequest request =
        engine::EvalRequest::symmetric(6, util::Rational{2}, {0.30, 0.40, 0.50});
    request.trials = 2000;
    const engine::Evaluator& evaluator = engine::Registry::instance().require(id);
    ASSERT_TRUE(evaluator.supports(request)) << id;

    request.control.deadline = util::Deadline::after(-1ms);
    EXPECT_THROW((void)evaluator.evaluate(request), DeadlineExceeded) << id;

    request.control = {};
    request.control.token = util::CancelToken::create();
    request.control.token.cancel();
    EXPECT_THROW((void)evaluator.evaluate(request), Cancelled) << id;

    request.control = {};
    EXPECT_EQ(evaluator.evaluate(request).values.size(), 3u) << id;
  }
}

TEST(EnvParseTest, StrictRangeCheckedNamingTheVariable) {
  EXPECT_EQ(util::parse_env_u64("DDM_SERVE_QUEUE", nullptr, 1, 100, 64), 64u);
  EXPECT_EQ(util::parse_env_u64("DDM_SERVE_QUEUE", "17", 1, 100, 64), 17u);
  for (const char* bad : {"", "  ", "abc", "17q", "0x11", "-3", "101", "0"}) {
    try {
      (void)util::parse_env_u64("DDM_SERVE_QUEUE", bad, 1, 100, 64);
      FAIL() << "expected Error for '" << bad << "'";
    } catch (const Error& error) {
      EXPECT_NE(std::string(error.what()).find("DDM_SERVE_QUEUE"), std::string::npos) << bad;
    }
  }
}

// --- the degradation chain -------------------------------------------------

class ResilientEngineTest : public ::testing::Test {
 protected:
  void TearDown() override { util::fault::clear_plan(); }
};

TEST_F(ResilientEngineTest, HealthyRequestsMatchThePlainEngineBitwise) {
  const engine::EvalRequest request =
      engine::EvalRequest::symmetric(5, util::Rational{2}, {0.31, 0.44, 0.52, 0.61});
  engine::ResilientOptions options;
  const engine::EvalOutcome resilient = engine::evaluate_resilient(options, request);
  const engine::Selection selection = engine::select(options.policy, request);
  const engine::EvalOutcome plain = selection.evaluator->evaluate(request);
  EXPECT_FALSE(resilient.degraded);
  EXPECT_TRUE(resilient.degradation_note.empty());
  EXPECT_EQ(resilient.engine_id, plain.engine_id);
  EXPECT_EQ(resilient.values, plain.values);  // bitwise: same engine, same path
}

TEST_F(ResilientEngineTest, CancelledRequestsNeverDegrade) {
  engine::EvalRequest request =
      engine::EvalRequest::symmetric(6, util::Rational{2}, {0.35, 0.45});
  engine::ResilientOptions options;
  options.control.token = util::CancelToken::create();
  options.control.token.cancel();
  request.control = options.control;
  EXPECT_THROW((void)engine::evaluate_resilient(options, request), Cancelled);
}

TEST_F(ResilientEngineTest, LoweringFaultDegradesCompiledToBatch) {
  // Use an (n, t) pair no other test compiles, so the plan cache misses and
  // lowering actually runs — the injected fault strikes
  // engine::kLoweringFaultChunk before the plan exists.
  engine::EvalRequest request = engine::EvalRequest::symmetric(
      7, util::Rational{5, 2}, {0.32, 0.41, 0.53, 0.62, 0.68});
  engine::ResilientOptions options;
  options.policy.engine = "compiled";

  const engine::EvalOutcome batch_reference =
      engine::Registry::instance().require("batch").evaluate(request);

  const auto before = util::fault::counters();
  util::fault::set_plan(util::fault::Plan::parse("throw@0"));
  const engine::EvalOutcome degraded = engine::evaluate_resilient(options, request);
  EXPECT_EQ(util::fault::counters().throws_injected, before.throws_injected + 1);

  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.engine_id, "batch");
  EXPECT_NE(degraded.degradation_note.find("compiled"), std::string::npos);
  EXPECT_NE(degraded.degradation_note.find("batch"), std::string::npos);
  EXPECT_EQ(degraded.values, batch_reference.values);  // honest, bit-identical

  // With the fault plan consumed, the same options recover the full engine.
  const engine::EvalOutcome healthy = engine::evaluate_resilient(options, request);
  EXPECT_FALSE(healthy.degraded);
  EXPECT_EQ(healthy.engine_id, "compiled");
}

TEST_F(ResilientEngineTest, ExhaustedCertifiedRegionDegradesToMonteCarlo) {
  engine::EvalRequest request =
      engine::EvalRequest::symmetric(6, util::Rational{2}, {0.37, 0.47, 0.57});
  request.trials = 5000;
  engine::ResilientOptions options;
  options.policy.engine = "certified";

  const engine::EvalOutcome mc_reference =
      engine::Registry::instance().require("mc").evaluate(request);

  // Chunk 0 of the "engine.certified" region throws on every in-region
  // attempt (1 + default max_retries of 2), so the region fails with
  // ParallelError; with zero request-level retries the chain falls to mc.
  util::fault::set_plan(util::fault::Plan::parse("throw@0x3"));
  const engine::EvalOutcome degraded = engine::evaluate_resilient(options, request);
  EXPECT_FALSE(util::fault::active()) << "plan should be fully consumed";

  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.engine_id, "mc");
  EXPECT_NE(degraded.degradation_note.find("certified"), std::string::npos);
  EXPECT_EQ(degraded.values, mc_reference.values);  // seeded: bit-identical
}

TEST_F(ResilientEngineTest, RequestLevelRetryRecoversBeforeDegrading) {
  engine::EvalRequest request =
      engine::EvalRequest::symmetric(6, util::Rational{2}, {0.37, 0.47, 0.57});
  engine::ResilientOptions options;
  options.policy.engine = "certified";
  options.retry.max_retries = 1;  // immediate retry (base_delay stays zero)

  const engine::EvalOutcome certified_reference =
      engine::Registry::instance().require("certified").evaluate(request);

  // Three throws exhaust the first region attempt; the request-level retry
  // runs a clean region, so the answer comes from the requested engine.
  util::fault::set_plan(util::fault::Plan::parse("throw@0x3"));
  const engine::EvalOutcome recovered = engine::evaluate_resilient(options, request);
  EXPECT_FALSE(recovered.degraded);
  EXPECT_EQ(recovered.engine_id, "certified");
  EXPECT_EQ(recovered.values, certified_reference.values);
}

}  // namespace
}  // namespace ddm
