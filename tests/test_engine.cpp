// ddm::engine — registry, selection policy, plan cache, and fault injection.
//
// The selection tests pin the byte-compatibility contract of the auto
// policy (engine/policy.hpp): compiled for small symmetric grids whose
// certificate meets the tolerance, batch otherwise, and every fallback
// visible in the Selection. The cache-fault tests pin satellite coverage:
// a fault that strikes during lowering must leave the plan cache
// unpoisoned — no entry, no counted miss — and the next call re-lowers
// successfully (matrix-run under DDM_THREADS=1/4 from tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <latch>
#include <memory>
#include <thread>
#include <vector>

#include "core/nonoblivious.hpp"
#include "core/threshold_optimizer.hpp"
#include "engine/engines.hpp"
#include "engine/evaluator.hpp"
#include "engine/plan_cache.hpp"
#include "engine/policy.hpp"
#include "engine/registry.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"
#include "util/status.hpp"

namespace ddm::engine {
namespace {

using util::Rational;

EvalRequest small_grid(std::uint32_t n, Rational t) {
  return EvalRequest::symmetric(n, std::move(t), {0.25, 0.5, 0.625, 0.75});
}

// --- registry ------------------------------------------------------------

TEST(EngineRegistry, BuiltinsRegisteredAndSorted) {
  const auto ids = Registry::instance().ids();
  const std::vector<std::string_view> expected{"batch", "certified", "compiled",
                                               "exact", "kernel", "mc"};
  EXPECT_EQ(ids, expected);
}

TEST(EngineRegistry, FindAndRequire) {
  Registry& registry = Registry::instance();
  ASSERT_NE(registry.find("kernel"), nullptr);
  EXPECT_EQ(registry.find("kernel")->id(), "kernel");
  EXPECT_EQ(registry.find("bogus"), nullptr);
  EXPECT_EQ(&registry.require("batch"), registry.find("batch"));
  try {
    (void)registry.require("bogus");
    FAIL() << "require('bogus') did not throw";
  } catch (const Error& error) {
    // The message must list the registered ids so CLI users see the menu.
    EXPECT_NE(std::string(error.what()).find("bogus"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("compiled"), std::string::npos);
  }
}

TEST(EngineRegistry, DuplicateRegistrationThrows) {
  Registry& registry = Registry::instance();
  EXPECT_THROW(register_builtin_engines(registry), Error);
  EXPECT_THROW(registry.register_engine(nullptr), Error);
}

TEST(EngineRegistry, DeterminismMetadata) {
  Registry& registry = Registry::instance();
  EXPECT_EQ(registry.require("kernel").determinism(), Determinism::kDeterministic);
  EXPECT_EQ(registry.require("certified").determinism(), Determinism::kCertified);
  EXPECT_EQ(registry.require("mc").determinism(), Determinism::kRandomized);
  EXPECT_STREQ(to_string(Determinism::kDeterministic), "deterministic");
  EXPECT_STREQ(to_string(Determinism::kCertified), "certified");
  EXPECT_STREQ(to_string(Determinism::kRandomized), "randomized");
}

// --- selection policy ----------------------------------------------------

TEST(EngineSelect, ForcedIdIsHonored) {
  EnginePolicy policy;
  policy.engine = "kernel";
  const Selection selection = select(policy, small_grid(4, Rational{4, 3}));
  EXPECT_EQ(selection.id(), "kernel");
  EXPECT_FALSE(selection.auto_mode);
  EXPECT_FALSE(selection.fallback);
}

TEST(EngineSelect, ForcedUnknownIdThrows) {
  EnginePolicy policy;
  policy.engine = "bogus";
  EXPECT_THROW((void)select(policy, small_grid(3, Rational{1})), Error);
}

TEST(EngineSelect, ForcedUnsupportedRequestThrows) {
  EnginePolicy policy;
  policy.engine = "kernel";  // double kernels cap n at 20
  EXPECT_THROW((void)select(policy, small_grid(24, Rational{8})), Error);
}

TEST(EngineSelect, AutoPicksCompiledWhenCertificateMeetsTolerance) {
  PlanCache::instance().clear();
  const Selection selection = select(EnginePolicy{}, small_grid(4, Rational{4, 3}));
  EXPECT_EQ(selection.id(), "compiled");
  EXPECT_TRUE(selection.auto_mode);
  EXPECT_FALSE(selection.fallback);
  EXPECT_LE(selection.compiled_bound, kCompiledAutoTolerance);
}

TEST(EngineSelect, AutoSkipsLoweringPastTheNCap) {
  const Selection selection = select(EnginePolicy{}, small_grid(kCompiledAutoMaxN + 1,
                                                                Rational{6}));
  EXPECT_EQ(selection.id(), "batch");
  EXPECT_TRUE(selection.auto_mode);
  // Not lowering past the cap is policy, not a failed promise: no note.
  EXPECT_FALSE(selection.fallback);
  EXPECT_TRUE(selection.note.empty());
}

TEST(EngineSelect, AutoFallsBackVisiblyOnCertificateMiss) {
  // n = 16, t = 6: the lowering succeeds but its certified bound (~7e-2)
  // blows the 1e-9 tolerance — the pre-engine CLI fell back silently here.
  const Selection selection = select(EnginePolicy{}, small_grid(16, Rational{6}));
  EXPECT_EQ(selection.id(), "batch");
  EXPECT_TRUE(selection.fallback);
  EXPECT_NE(selection.note.find("exceeds tolerance"), std::string::npos) << selection.note;
  EXPECT_GT(selection.compiled_bound, kCompiledAutoTolerance);
}

TEST(EngineSelect, AutoUsesBatchForGeneralPoints) {
  const auto request = EvalRequest::general({{0.25, 0.5, 0.75}}, Rational{1});
  const Selection selection = select(EnginePolicy{}, request);
  EXPECT_EQ(selection.id(), "batch");
  EXPECT_FALSE(selection.fallback);
}

// --- engine-backed optimizer objective ----------------------------------

TEST(EngineBatchObjective, BitwiseEqualToBuiltinObjective) {
  const std::vector<std::vector<double>> points{{0.4, 0.6, 0.7}, {0.62, 0.62, 0.62}};
  const auto objective = batch_objective();
  const auto via_engine = objective(points, 1.0);
  const auto direct = core::threshold_winning_probability_batch(points, 1.0);
  ASSERT_EQ(via_engine.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_engine[i], direct[i]) << "point " << i;  // bitwise
  }
}

TEST(EngineBatchObjective, SearchIterateSequenceUnchanged) {
  const auto baseline = core::maximize_thresholds({0.5, 0.5, 0.5}, 1.0, 0.25, 1e-6);
  const auto via_engine =
      core::maximize_thresholds({0.5, 0.5, 0.5}, 1.0, batch_objective(), 0.25, 1e-6);
  EXPECT_EQ(via_engine.thresholds, baseline.thresholds);
  EXPECT_EQ(via_engine.value, baseline.value);
  EXPECT_EQ(via_engine.evaluations, baseline.evaluations);
  EXPECT_EQ(via_engine.final_step, baseline.final_step);
}

TEST(EngineBatchObjective, UnknownEngineFailsAtWiringTime) {
  EXPECT_THROW((void)batch_objective("bogus"), Error);
}

// --- plan cache ----------------------------------------------------------

TEST(PlanCacheTest, MissThenHitSharesOnePlan) {
  PlanCache cache;
  const auto first = cache.get_or_lower(4, Rational{4, 3});
  const auto second = cache.get_or_lower(4, Rational{4, 3});
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PlanCacheTest, DistinctInstancesGetDistinctEntries) {
  PlanCache cache;
  (void)cache.get_or_lower(3, Rational{1});
  (void)cache.get_or_lower(4, Rational{4, 3});
  (void)cache.get_or_lower(3, Rational{3, 2});  // same n, different t
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(PlanCacheTest, LruEvictionKeepsRecentlyUsed) {
  PlanCache cache(2);
  (void)cache.get_or_lower(2, Rational{2, 3});
  (void)cache.get_or_lower(3, Rational{1});
  (void)cache.get_or_lower(2, Rational{2, 3});  // refresh n=2 to the front
  (void)cache.get_or_lower(4, Rational{4, 3});  // evicts n=3 (LRU)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  const auto before = cache.stats();
  (void)cache.get_or_lower(2, Rational{2, 3});  // still cached
  EXPECT_EQ(cache.stats().hits, before.hits + 1);
  (void)cache.get_or_lower(3, Rational{1});  // re-lowered
  EXPECT_EQ(cache.stats().misses, before.misses + 1);
}

TEST(PlanCacheTest, EvictedPlanStaysValidForHolders) {
  PlanCache cache(1);
  const auto held = cache.get_or_lower(3, Rational{1});
  (void)cache.get_or_lower(4, Rational{4, 3});  // evicts the held plan
  EXPECT_EQ(cache.size(), 1u);
  // The shared_ptr handle keeps the evicted plan alive and usable.
  const double exact = core::symmetric_threshold_winning_probability(
                           3, Rational{5, 8}, Rational{1})
                           .to_double();
  EXPECT_NEAR(held->eval(0.625), exact, held->max_error_bound() + 1e-12);
}

TEST(PlanCacheTest, SetCapacityShrinksAndClearEmpties) {
  PlanCache cache;
  (void)cache.get_or_lower(2, Rational{2, 3});
  (void)cache.get_or_lower(3, Rational{1});
  (void)cache.get_or_lower(4, Rational{4, 3});
  cache.set_capacity(1);
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCacheTest, NonCanonicalRationalsShareOneEntry) {
  // Regression: the cache key is built from t's numerator/denominator, so it
  // is only correct if equal rationals always spell identically. 2/6, 1/3,
  // and -1/-3 are one value and must be one entry — a duplicate would mean
  // duplicated lowering work and a cache that lies about its size.
  PlanCache cache;
  const auto a = cache.get_or_lower(3, Rational{2, 6});
  const auto b = cache.get_or_lower(3, Rational{1, 3});
  const auto c = cache.get_or_lower(3, Rational{-1, -3});
  const auto d = cache.get_or_lower(3, Rational::parse("3/9"));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a.get(), c.get());
  EXPECT_EQ(a.get(), d.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 3u);
}

TEST(PlanCacheTest, LoweringRacesAreCountedNotSilent) {
  // Four raw threads released together onto one cold key, with an injected
  // pre-lowering delay so every thread reaches the miss path before the
  // first insert lands. Losers adopt the winner's plan; the discarded
  // lowerings must be COUNTED: races == misses − entries inserted holds for
  // any interleaving, so a fleet stuck re-lowering concurrently is visible.
  constexpr std::size_t kThreads = 4;
  PlanCache cache;
  util::fault::set_plan(util::fault::Plan::parse("delay@0x4:50ms"));
  std::latch start(kThreads);
  std::vector<std::shared_ptr<const poly::CompiledPiecewise>> plans(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      start.arrive_and_wait();
      plans[i] = cache.get_or_lower(6, Rational{2});
    });
  }
  for (std::thread& thread : threads) thread.join();
  util::fault::clear_plan();

  for (const auto& plan : plans) EXPECT_EQ(plan.get(), plans[0].get());
  const auto stats = cache.stats();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(stats.hits + stats.misses, kThreads);
  // Exactly one miss inserted; every other miss lost the race.
  EXPECT_EQ(stats.races, stats.misses - 1);
  // The 50 ms pre-lowering window makes a genuinely sequential interleaving
  // implausible; at least one race must have been observed and counted.
  EXPECT_GE(stats.races, 1u);
}

TEST(PlanCacheTest, ConcurrentLookupsShareOnePlan) {
  PlanCache cache;
  std::vector<std::shared_ptr<const poly::CompiledPiecewise>> plans(16);
  util::ParallelOptions options;
  options.grain = 1;
  util::parallel_for(
      0, plans.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) plans[i] = cache.get_or_lower(5, Rational{5, 3});
      },
      options);
  EXPECT_EQ(cache.size(), 1u);
  // Losers of a lowering race adopt the winner's plan: one shared copy.
  for (const auto& plan : plans) EXPECT_EQ(plan.get(), plans[0].get());
}

// --- fault injection (matrix-run under DDM_THREADS=1/4) ------------------

TEST(EngineCacheFault, ThrowDuringLoweringLeavesCacheUnpoisoned) {
  PlanCache cache;
  util::fault::set_plan(util::fault::Plan::parse("throw@0"));
  EXPECT_THROW((void)cache.get_or_lower(6, Rational{2}), util::fault::TransientFault);
  // The fault struck before any cache mutation: no entry, nothing counted.
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  // The directive is spent; the retry re-lowers successfully.
  const auto plan = cache.get_or_lower(6, Rational{2});
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  util::fault::clear_plan();
}

TEST(EngineCacheFault, AutoSelectTurnsLoweringFaultIntoVisibleFallback) {
  PlanCache::instance().clear();
  util::fault::set_plan(util::fault::Plan::parse("throw@0"));
  const Selection faulted = select(EnginePolicy{}, small_grid(6, Rational{5, 2}));
  EXPECT_EQ(faulted.id(), "batch");
  EXPECT_TRUE(faulted.fallback);
  EXPECT_NE(faulted.note.find("lowering failed"), std::string::npos) << faulted.note;
  util::fault::clear_plan();
  // The cache was left clean, so the next auto selection lowers and takes
  // the compiled plan as if the fault never happened.
  const Selection clean = select(EnginePolicy{}, small_grid(6, Rational{5, 2}));
  EXPECT_EQ(clean.id(), "compiled");
  EXPECT_FALSE(clean.fallback);
}

TEST(EngineCacheFault, ForcedCompiledPropagatesTheFault) {
  PlanCache::instance().clear();
  util::fault::set_plan(util::fault::Plan::parse("throw@0"));
  EnginePolicy policy;
  policy.engine = "compiled";
  const Selection selection = select(policy, small_grid(6, Rational{7, 3}));
  EXPECT_THROW((void)selection.evaluator->evaluate(small_grid(6, Rational{7, 3})),
               util::fault::TransientFault);
  util::fault::clear_plan();
  const auto outcome = selection.evaluator->evaluate(small_grid(6, Rational{7, 3}));
  EXPECT_EQ(outcome.values.size(), 4u);
}

}  // namespace
}  // namespace ddm::engine
