// Tests for Corollary 4.2 / Theorem 4.3 — oblivious optimality conditions.
#include "core/optimality.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/oblivious.hpp"
#include "prob/rng.hpp"

namespace ddm::core {
namespace {

using util::Rational;

TEST(ObliviousGradient, VanishesAtHalfForAllN) {
  // Theorem 4.3: α = (1/2, ..., 1/2) satisfies the optimality conditions of
  // Corollary 4.2 — every partial derivative is exactly zero.
  for (std::uint32_t n = 1; n <= 12; ++n) {
    const std::vector<Rational> half(n, Rational(1, 2));
    for (const Rational& t : {Rational{1}, Rational{static_cast<std::int64_t>(n), 3},
                              Rational(3, 2)}) {
      EXPECT_EQ(stationarity_residual(half, t), Rational{0}) << "n=" << n << " t=" << t;
    }
  }
}

TEST(ObliviousGradient, NonzeroAwayFromHalf) {
  // Lemma 4.6: 1/2 is the only interior stationary point; probes elsewhere
  // must have a nonzero gradient.
  for (std::uint32_t n = 2; n <= 8; ++n) {
    const Rational t{static_cast<std::int64_t>(n), 3};
    for (const Rational& probe : {Rational(1, 3), Rational(2, 3), Rational(1, 4),
                                  Rational(9, 10)}) {
      const std::vector<Rational> alpha(n, probe);
      EXPECT_GT(stationarity_residual(alpha, t), Rational{0}) << "n=" << n << " a=" << probe;
    }
  }
}

TEST(ObliviousGradient, CollapseMatchesBruteforce) {
  const std::vector<Rational> alphas{Rational(1, 3), Rational(2, 5), Rational(1, 2),
                                     Rational(7, 9), Rational(1, 7)};
  for (std::size_t n = 1; n <= alphas.size(); ++n) {
    const std::span<const Rational> a{alphas.data(), n};
    for (int i = 1; i <= 5; ++i) {
      const Rational t{i, 3};
      const auto fast = oblivious_gradient(a, t);
      const auto slow = oblivious_gradient_bruteforce(a, t);
      ASSERT_EQ(fast.size(), slow.size());
      for (std::size_t k = 0; k < fast.size(); ++k) {
        EXPECT_EQ(fast[k], slow[k]) << "n=" << n << " k=" << k << " t=" << t;
      }
    }
  }
}

TEST(ObliviousGradient, MatchesFiniteDifferences) {
  const std::vector<Rational> alpha{Rational(1, 3), Rational(3, 5), Rational(1, 2)};
  const Rational t{1};
  const Rational h{1, 1000000};
  const auto gradient = oblivious_gradient(alpha, t);
  for (std::size_t k = 0; k < alpha.size(); ++k) {
    std::vector<Rational> up = alpha;
    std::vector<Rational> down = alpha;
    up[k] += h;
    down[k] -= h;
    const Rational numeric = (oblivious_winning_probability(up, t) -
                              oblivious_winning_probability(down, t)) /
                             (Rational{2} * h);
    // P is multilinear in α, so the central difference is exact.
    EXPECT_EQ(gradient[k], numeric) << k;
  }
}

TEST(ObliviousGradient, DoubleMatchesExact) {
  const std::vector<Rational> alpha{Rational(1, 4), Rational(2, 3), Rational(1, 2),
                                    Rational(4, 5)};
  std::vector<double> alpha_d;
  for (const Rational& a : alpha) alpha_d.push_back(a.to_double());
  const auto exact = oblivious_gradient(alpha, Rational(4, 3));
  const auto approx = oblivious_gradient(alpha_d, 4.0 / 3.0);
  ASSERT_EQ(exact.size(), approx.size());
  for (std::size_t k = 0; k < exact.size(); ++k) {
    EXPECT_NEAR(approx[k], exact[k].to_double(), 1e-12);
  }
}

TEST(ObliviousGradient, SymmetricAlphaGivesSymmetricGradient) {
  const std::vector<Rational> alpha(6, Rational(2, 7));
  const auto gradient = oblivious_gradient(alpha, Rational{2});
  for (std::size_t k = 1; k < gradient.size(); ++k) EXPECT_EQ(gradient[k], gradient[0]);
}

TEST(ObliviousGradient, ValidatesInput) {
  EXPECT_THROW((void)oblivious_gradient(std::vector<Rational>{}, Rational{1}),
               std::invalid_argument);
}

TEST(DiagonalCondition, AntisymmetricCoefficients) {
  // Lemma 4.4 ⇒ c_k = −c_{n−1−k}; for odd n the middle coefficient vanishes.
  for (std::uint32_t n = 2; n <= 12; ++n) {
    for (const Rational& t : {Rational{1}, Rational{static_cast<std::int64_t>(n), 3}}) {
      const auto c = diagonal_condition_coefficients(n, t);
      ASSERT_EQ(c.size(), n);
      for (std::uint32_t k = 0; k < n; ++k) {
        EXPECT_EQ(c[k], -c[n - 1 - k]) << "n=" << n << " k=" << k;
      }
      if (n % 2 == 1) EXPECT_TRUE(c[(n - 1) / 2].is_zero());
    }
  }
}

TEST(DiagonalCondition, RatioOneIsARoot) {
  // alpha = 1/2 ⇔ r = alpha/(1−alpha) = 1, and antisymmetry makes r = 1 a
  // root of Σ c_k r^k (the computational content of Theorem 4.3).
  for (std::uint32_t n = 2; n <= 10; ++n) {
    const Rational t{static_cast<std::int64_t>(n), 3};
    const auto c = diagonal_condition_coefficients(n, t);
    Rational sum{0};
    for (const Rational& coefficient : c) sum += coefficient;
    EXPECT_TRUE(sum.is_zero()) << "n=" << n;
  }
}

TEST(DiagonalCondition, MatchesGradientOnDiagonal) {
  // Σ c_k r^k at r = a/(1−a), times (1−a)^{n−1}, equals dP/dα_k at the
  // symmetric vector (any k by symmetry).
  for (std::uint32_t n = 2; n <= 7; ++n) {
    const Rational t{static_cast<std::int64_t>(n), 3};
    const auto c = diagonal_condition_coefficients(n, t);
    for (const Rational& a : {Rational(1, 3), Rational(3, 5), Rational(1, 4)}) {
      const Rational r = a / (Rational{1} - a);
      Rational series{0};
      Rational r_power{1};
      for (const Rational& coefficient : c) {
        series += coefficient * r_power;
        r_power *= r;
      }
      const Rational scaled =
          series * (Rational{1} - a).pow(static_cast<std::int64_t>(n - 1));
      const std::vector<Rational> alpha(n, a);
      EXPECT_EQ(scaled, oblivious_gradient(alpha, t)[0]) << "n=" << n << " a=" << a;
    }
  }
}

TEST(MaximizeOblivious, ConvergesToHalfFromVariousStarts) {
  // Independent numerical confirmation of Theorem 4.3.
  for (std::uint32_t n : {2u, 3u, 5u}) {
    const double t = static_cast<double>(n) / 3.0;
    for (const double start : {0.1, 0.35, 0.8}) {
      const AscentResult result = maximize_oblivious(std::vector<double>(n, start), t, 2000);
      for (const double a : result.alpha) EXPECT_NEAR(a, 0.5, 1e-4) << "n=" << n;
      EXPECT_LT(result.gradient_norm, 1e-6);
      EXPECT_NEAR(result.value, optimal_oblivious_winning_probability_double(n, t), 1e-9);
    }
  }
}

TEST(MaximizeOblivious, HeterogeneousStartReachesStationaryPointAtLeastAsGood) {
  // From an asymmetric start the ascent may legitimately leave the diagonal:
  // alpha = 1/2 is only a stationary point, and boundary corners (identity-
  // based splits) achieve strictly more. Require convergence to SOME
  // first-order point whose value is at least that of 1/2.
  std::vector<double> start{0.05, 0.9, 0.4, 0.7};
  const AscentResult result = maximize_oblivious(std::move(start), 4.0 / 3.0, 4000);
  EXPECT_LT(result.gradient_norm, 1e-6);
  EXPECT_GE(result.value,
            optimal_oblivious_winning_probability_double(4, 4.0 / 3.0) - 1e-12);
}

TEST(MaximizeOblivious, ClampsStartIntoUnitBox) {
  const AscentResult result = maximize_oblivious(std::vector<double>{-0.5, 1.5}, 1.0, 500);
  for (const double a : result.alpha) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(MaximizeOblivious, ValidatesInput) {
  EXPECT_THROW((void)maximize_oblivious(std::vector<double>{}, 1.0), std::invalid_argument);
}

TEST(MaximizeOblivious, NeverDecreasesValue) {
  const std::vector<double> start(4, 0.2);
  const double initial = oblivious_winning_probability(start, 1.5);
  const AscentResult result = maximize_oblivious(start, 1.5, 200);
  EXPECT_GE(result.value, initial);
}

}  // namespace
}  // namespace ddm::core
