// Tests for util::BigInt — the arbitrary-precision substrate everything
// exact in this library rests on.
#include "util/bigint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <sstream>

namespace ddm::util {
namespace {

TEST(BigInt, DefaultConstructedIsZero) {
  const BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_negative());
  EXPECT_EQ(zero.signum(), 0);
  EXPECT_EQ(zero.to_string(), "0");
  EXPECT_EQ(zero.bit_length(), 0u);
}

TEST(BigInt, ConstructFromInt64) {
  EXPECT_EQ(BigInt{42}.to_string(), "42");
  EXPECT_EQ(BigInt{-42}.to_string(), "-42");
  EXPECT_EQ(BigInt{0}.to_string(), "0");
  EXPECT_EQ(BigInt{std::numeric_limits<std::int64_t>::max()}.to_string(),
            "9223372036854775807");
  EXPECT_EQ(BigInt{std::numeric_limits<std::int64_t>::min()}.to_string(),
            "-9223372036854775808");
}

TEST(BigInt, Int64RoundTrip) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{123456789},
        std::int64_t{-987654321012345678}, std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_TRUE(BigInt{v}.fits_int64());
    EXPECT_EQ(BigInt{v}.to_int64(), v);
  }
}

TEST(BigInt, ToInt64ThrowsWhenTooLarge) {
  const BigInt huge{"9223372036854775808"};  // INT64_MAX + 1
  EXPECT_FALSE(huge.fits_int64());
  EXPECT_THROW((void)huge.to_int64(), std::overflow_error);
  // But INT64_MIN itself fits.
  EXPECT_EQ(BigInt{"-9223372036854775808"}.to_int64(),
            std::numeric_limits<std::int64_t>::min());
}

TEST(BigInt, DecimalStringRoundTrip) {
  const char* cases[] = {"0",
                         "7",
                         "-7",
                         "4294967295",
                         "4294967296",
                         "18446744073709551615",
                         "18446744073709551616",
                         "340282366920938463463374607431768211456",
                         "-99999999999999999999999999999999999999999999"};
  for (const char* s : cases) {
    EXPECT_EQ(BigInt{s}.to_string(), s) << s;
  }
}

TEST(BigInt, ParseAcceptsLeadingPlusAndZeros) {
  EXPECT_EQ(BigInt{"+17"}.to_string(), "17");
  EXPECT_EQ(BigInt{"00017"}.to_string(), "17");
  EXPECT_EQ(BigInt{"-000"}.to_string(), "0");
  EXPECT_FALSE(BigInt{"-0"}.is_negative());
}

TEST(BigInt, ParseRejectsMalformedInput) {
  EXPECT_THROW(BigInt{""}, std::invalid_argument);
  EXPECT_THROW(BigInt{"-"}, std::invalid_argument);
  EXPECT_THROW(BigInt{"12a3"}, std::invalid_argument);
  EXPECT_THROW(BigInt{" 12"}, std::invalid_argument);
  EXPECT_THROW(BigInt{"1 2"}, std::invalid_argument);
}

TEST(BigInt, AdditionBasic) {
  EXPECT_EQ((BigInt{2} + BigInt{3}).to_string(), "5");
  EXPECT_EQ((BigInt{-2} + BigInt{3}).to_string(), "1");
  EXPECT_EQ((BigInt{2} + BigInt{-3}).to_string(), "-1");
  EXPECT_EQ((BigInt{-2} + BigInt{-3}).to_string(), "-5");
  EXPECT_EQ((BigInt{5} + BigInt{-5}).to_string(), "0");
}

TEST(BigInt, AdditionCarryAcrossLimbs) {
  const BigInt a{"4294967295"};  // 2^32 - 1
  EXPECT_EQ((a + BigInt{1}).to_string(), "4294967296");
  const BigInt b{"18446744073709551615"};  // 2^64 - 1
  EXPECT_EQ((b + BigInt{1}).to_string(), "18446744073709551616");
}

TEST(BigInt, SubtractionBasic) {
  EXPECT_EQ((BigInt{10} - BigInt{3}).to_string(), "7");
  EXPECT_EQ((BigInt{3} - BigInt{10}).to_string(), "-7");
  EXPECT_EQ((BigInt{-3} - BigInt{-10}).to_string(), "7");
  EXPECT_EQ((BigInt{3} - BigInt{3}).to_string(), "0");
}

TEST(BigInt, SubtractionBorrowAcrossLimbs) {
  const BigInt a{"18446744073709551616"};  // 2^64
  EXPECT_EQ((a - BigInt{1}).to_string(), "18446744073709551615");
}

TEST(BigInt, MultiplicationBasic) {
  EXPECT_EQ((BigInt{6} * BigInt{7}).to_string(), "42");
  EXPECT_EQ((BigInt{-6} * BigInt{7}).to_string(), "-42");
  EXPECT_EQ((BigInt{-6} * BigInt{-7}).to_string(), "42");
  EXPECT_EQ((BigInt{0} * BigInt{12345}).to_string(), "0");
}

TEST(BigInt, MultiplicationLarge) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  const BigInt a{"18446744073709551615"};
  EXPECT_EQ((a * a).to_string(), "340282366920938463426481119284349108225");
}

TEST(BigInt, DivisionBasic) {
  EXPECT_EQ((BigInt{42} / BigInt{7}).to_string(), "6");
  EXPECT_EQ((BigInt{43} / BigInt{7}).to_string(), "6");
  EXPECT_EQ((BigInt{43} % BigInt{7}).to_string(), "1");
  EXPECT_EQ((BigInt{-43} / BigInt{7}).to_string(), "-6");   // truncation toward zero
  EXPECT_EQ((BigInt{-43} % BigInt{7}).to_string(), "-1");   // sign follows dividend
  EXPECT_EQ((BigInt{43} / BigInt{-7}).to_string(), "-6");
  EXPECT_EQ((BigInt{43} % BigInt{-7}).to_string(), "1");
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt{1} / BigInt{0}, std::domain_error);
  EXPECT_THROW(BigInt{1} % BigInt{0}, std::domain_error);
}

TEST(BigInt, DivisionMultiLimbKnuth) {
  const BigInt dividend{"340282366920938463463374607431768211456"};  // 2^128
  const BigInt divisor{"18446744073709551616"};                      // 2^64
  auto [q, r] = BigInt::div_mod(dividend, divisor);
  EXPECT_EQ(q.to_string(), "18446744073709551616");
  EXPECT_TRUE(r.is_zero());
}

TEST(BigInt, DivisionIdentityRandomized) {
  // a == (a / b) * b + (a % b) for random multi-limb operands.
  std::mt19937_64 gen{12345};
  for (int iter = 0; iter < 300; ++iter) {
    std::string a_digits;
    std::string b_digits;
    const int a_len = 1 + static_cast<int>(gen() % 40);
    const int b_len = 1 + static_cast<int>(gen() % 20);
    for (int i = 0; i < a_len; ++i) a_digits.push_back(static_cast<char>('0' + gen() % 10));
    for (int i = 0; i < b_len; ++i) b_digits.push_back(static_cast<char>('0' + gen() % 10));
    BigInt a{a_digits};
    BigInt b{b_digits};
    if (b.is_zero()) b = BigInt{1};
    if (gen() % 2) a = -a;
    if (gen() % 2) b = -b;
    const auto [q, r] = BigInt::div_mod(a, b);
    EXPECT_EQ(q * b + r, a) << a << " / " << b;
    EXPECT_TRUE(r.abs() < b.abs());
    // Remainder sign follows the dividend.
    if (!r.is_zero()) EXPECT_EQ(r.signum(), a.signum());
  }
}

TEST(BigInt, ArithmeticMatchesInt128Oracle) {
  std::mt19937_64 gen{777};
  const auto to_string_128 = [](__int128 v) {
    if (v == 0) return std::string{"0"};
    const bool neg = v < 0;
    unsigned __int128 mag = neg ? -static_cast<unsigned __int128>(v) : v;
    std::string s;
    while (mag != 0) {
      s.push_back(static_cast<char>('0' + static_cast<int>(mag % 10)));
      mag /= 10;
    }
    if (neg) s.push_back('-');
    std::reverse(s.begin(), s.end());
    return s;
  };
  for (int iter = 0; iter < 500; ++iter) {
    const std::int64_t x = static_cast<std::int64_t>(gen());
    const std::int64_t y = static_cast<std::int64_t>(gen());
    const BigInt bx{x};
    const BigInt by{y};
    EXPECT_EQ((bx + by).to_string(),
              to_string_128(static_cast<__int128>(x) + static_cast<__int128>(y)));
    EXPECT_EQ((bx - by).to_string(),
              to_string_128(static_cast<__int128>(x) - static_cast<__int128>(y)));
    EXPECT_EQ((bx * by).to_string(),
              to_string_128(static_cast<__int128>(x) * static_cast<__int128>(y)));
    if (y != 0) {
      EXPECT_EQ((bx / by).to_string(),
                to_string_128(static_cast<__int128>(x) / static_cast<__int128>(y)));
      EXPECT_EQ((bx % by).to_string(),
                to_string_128(static_cast<__int128>(x) % static_cast<__int128>(y)));
    }
  }
}

TEST(BigInt, KaratsubaMatchesSchoolbookOnLargeOperands) {
  // Operands above the Karatsuba threshold (32 limbs = 1024 bits) exercise
  // the recursive path; verify via the division identity and a squared
  // binomial: (a+b)^2 == a^2 + 2ab + b^2.
  std::mt19937_64 gen{2024};
  for (int iter = 0; iter < 20; ++iter) {
    std::string a_digits(400, '0');
    std::string b_digits(380, '0');
    for (char& c : a_digits) c = static_cast<char>('0' + gen() % 10);
    for (char& c : b_digits) c = static_cast<char>('0' + gen() % 10);
    a_digits[0] = '1';
    b_digits[0] = '1';
    const BigInt a{a_digits};
    const BigInt b{b_digits};
    const BigInt lhs = (a + b) * (a + b);
    const BigInt rhs = a * a + BigInt{2} * a * b + b * b;
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(BigInt, Comparison) {
  EXPECT_LT(BigInt{-5}, BigInt{-4});
  EXPECT_LT(BigInt{-1}, BigInt{0});
  EXPECT_LT(BigInt{0}, BigInt{1});
  EXPECT_LT(BigInt{"99999999999999999998"}, BigInt{"99999999999999999999"});
  EXPECT_LT(BigInt{"-99999999999999999999"}, BigInt{"-99999999999999999998"});
  EXPECT_LT(BigInt{"999"}, BigInt{"1000"});
  EXPECT_EQ(BigInt{"123"}, BigInt{123});
}

TEST(BigInt, Negation) {
  EXPECT_EQ((-BigInt{5}).to_string(), "-5");
  EXPECT_EQ((-BigInt{-5}).to_string(), "5");
  EXPECT_EQ((-BigInt{0}).to_string(), "0");
  EXPECT_FALSE((-BigInt{0}).is_negative());
}

TEST(BigInt, Abs) {
  EXPECT_EQ(BigInt{-123}.abs().to_string(), "123");
  EXPECT_EQ(BigInt{123}.abs().to_string(), "123");
}

TEST(BigInt, ShiftLeftMatchesMultiplicationByPowersOfTwo) {
  BigInt x{"12345678901234567890"};
  for (std::size_t s : {std::size_t{1}, std::size_t{31}, std::size_t{32}, std::size_t{33},
                        std::size_t{100}}) {
    EXPECT_EQ(x << s, x * BigInt::pow(BigInt{2}, s)) << s;
  }
}

TEST(BigInt, ShiftRightTruncatesMagnitude) {
  EXPECT_EQ((BigInt{5} >> 1).to_string(), "2");
  EXPECT_EQ((BigInt{-5} >> 1).to_string(), "-2");  // magnitude shift
  EXPECT_EQ((BigInt{"18446744073709551616"} >> 64).to_string(), "1");
  EXPECT_EQ((BigInt{1} >> 100).to_string(), "0");
}

TEST(BigInt, BitLength) {
  EXPECT_EQ(BigInt{1}.bit_length(), 1u);
  EXPECT_EQ(BigInt{2}.bit_length(), 2u);
  EXPECT_EQ(BigInt{255}.bit_length(), 8u);
  EXPECT_EQ(BigInt{256}.bit_length(), 9u);
  EXPECT_EQ(BigInt{"4294967296"}.bit_length(), 33u);
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt{12}, BigInt{18}).to_string(), "6");
  EXPECT_EQ(BigInt::gcd(BigInt{-12}, BigInt{18}).to_string(), "6");
  EXPECT_EQ(BigInt::gcd(BigInt{0}, BigInt{5}).to_string(), "5");
  EXPECT_EQ(BigInt::gcd(BigInt{0}, BigInt{0}).to_string(), "0");
  EXPECT_EQ(BigInt::gcd(BigInt{"600851475143"}, BigInt{"6857"}).to_string(), "6857");
}

TEST(BigInt, Pow) {
  EXPECT_EQ(BigInt::pow(BigInt{2}, 10).to_string(), "1024");
  EXPECT_EQ(BigInt::pow(BigInt{10}, 0).to_string(), "1");
  EXPECT_EQ(BigInt::pow(BigInt{0}, 0).to_string(), "1");  // convention used by Rational::pow
  EXPECT_EQ(BigInt::pow(BigInt{0}, 5).to_string(), "0");
  EXPECT_EQ(BigInt::pow(BigInt{-3}, 3).to_string(), "-27");
  EXPECT_EQ(BigInt::pow(BigInt{2}, 128).to_string(),
            "340282366920938463463374607431768211456");
}

TEST(BigInt, Factorial) {
  EXPECT_EQ(BigInt::factorial(0).to_string(), "1");
  EXPECT_EQ(BigInt::factorial(1).to_string(), "1");
  EXPECT_EQ(BigInt::factorial(5).to_string(), "120");
  EXPECT_EQ(BigInt::factorial(20).to_string(), "2432902008176640000");
  EXPECT_EQ(BigInt::factorial(30).to_string(), "265252859812191058636308480000000");
}

TEST(BigInt, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt{42}.to_double(), 42.0);
  EXPECT_DOUBLE_EQ(BigInt{-42}.to_double(), -42.0);
  EXPECT_NEAR(BigInt{"1000000000000000000000"}.to_double(), 1e21, 1e6);
}

TEST(BigInt, StreamOutput) {
  std::ostringstream oss;
  oss << BigInt{"-12345678901234567890"};
  EXPECT_EQ(oss.str(), "-12345678901234567890");
}

TEST(BigInt, EvenOdd) {
  EXPECT_TRUE(BigInt{0}.is_even());
  EXPECT_TRUE(BigInt{2}.is_even());
  EXPECT_FALSE(BigInt{3}.is_even());
  EXPECT_FALSE(BigInt{"-99999999999999999999"}.is_even());
}

TEST(BigInt, SelfAliasingOperations) {
  BigInt a{"123456789123456789"};
  a += a;
  EXPECT_EQ(a.to_string(), "246913578246913578");
  BigInt b{"1000"};
  b *= b;
  EXPECT_EQ(b.to_string(), "1000000");
  BigInt c{"777"};
  c -= c;
  EXPECT_TRUE(c.is_zero());
}

}  // namespace
}  // namespace ddm::util
