// Tests for Theorem 4.1 / Theorem 4.3 — oblivious winning probabilities.
#include "core/oblivious.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/protocol.hpp"
#include "prob/uniform_sum.hpp"
#include "prob/rng.hpp"
#include "sim/monte_carlo.hpp"

namespace ddm::core {
namespace {

using util::Rational;

TEST(Phi, Lemma44Symmetry) {
  // φ_t(|b|) = φ_t(n − |b|) for every n, k, t (Lemma 4.4).
  for (std::uint32_t n = 1; n <= 10; ++n) {
    for (std::uint32_t k = 0; k <= n; ++k) {
      for (int i = 1; i <= 8; ++i) {
        const Rational t{i, 3};
        EXPECT_EQ(phi(n, k, t), phi(n, n - k, t)) << n << " " << k << " " << t;
      }
    }
  }
}

TEST(Phi, KnownValues) {
  // n = 3, t = 1: φ(0) = IH_0(1)·IH_3(1) = 1/6; φ(1) = 1 · 1/2 = 1/2.
  EXPECT_EQ(phi(3, 0, Rational{1}), Rational(1, 6));
  EXPECT_EQ(phi(3, 1, Rational{1}), Rational(1, 2));
  EXPECT_EQ(phi(3, 2, Rational{1}), Rational(1, 2));
  EXPECT_EQ(phi(3, 3, Rational{1}), Rational(1, 6));
  EXPECT_THROW((void)phi(3, 4, Rational{1}), std::invalid_argument);
}

TEST(Phi, MonotoneTowardBalancedSplit) {
  // Balanced splits have (weakly) higher no-overflow probability.
  const Rational t{2};
  for (std::uint32_t n = 2; n <= 9; ++n) {
    for (std::uint32_t k = 0; k + 1 <= n / 2; ++k) {
      EXPECT_LE(phi(n, k, t), phi(n, k + 1, t)) << n << " " << k;
    }
  }
}

TEST(OnesCountDistribution, MatchesBinomialForEqualAlpha) {
  const std::vector<Rational> alpha(4, Rational(1, 3));
  const std::vector<Rational> pmf = ones_count_distribution(alpha);
  ASSERT_EQ(pmf.size(), 5u);
  // #ones ~ Binomial(4, 2/3).
  Rational total{0};
  for (std::uint32_t k = 0; k <= 4; ++k) {
    total += pmf[k];
  }
  EXPECT_EQ(total, Rational{1});
  EXPECT_EQ(pmf[0], Rational(1, 81));
  EXPECT_EQ(pmf[4], Rational(16, 81));
  EXPECT_EQ(pmf[2], Rational{6} * Rational(1, 9) * Rational(4, 9));
}

TEST(OnesCountDistribution, DegenerateAlpha) {
  const std::vector<Rational> alpha{Rational{1}, Rational{0}, Rational{1}};
  const std::vector<Rational> pmf = ones_count_distribution(alpha);
  // Exactly one player (the α = 0 one) picks bin 1.
  EXPECT_EQ(pmf[1], Rational{1});
  EXPECT_EQ(pmf[0], Rational{0});
  EXPECT_EQ(pmf[2], Rational{0});
}

TEST(ObliviousWinning, OptimalN3T1IsFiveTwelfths) {
  // P at α = 1/2, n = 3, t = 1: (1/8)(1/6 + 3·1/2 + 3·1/2 + 1/6) = 5/12.
  EXPECT_EQ(optimal_oblivious_winning_probability(3, Rational{1}), Rational(5, 12));
  const std::vector<Rational> alpha(3, Rational(1, 2));
  EXPECT_EQ(oblivious_winning_probability(alpha, Rational{1}), Rational(5, 12));
}

TEST(ObliviousWinning, DpMatchesBruteforce) {
  // Random-ish heterogeneous alphas across several n and t.
  const std::vector<Rational> alphas{Rational(1, 3), Rational(2, 5), Rational(1, 2),
                                     Rational(7, 9), Rational(1, 7), Rational(9, 10)};
  for (std::size_t n = 1; n <= alphas.size(); ++n) {
    const std::span<const Rational> a{alphas.data(), n};
    for (int i = 1; i <= 6; ++i) {
      const Rational t{i, 3};
      EXPECT_EQ(oblivious_winning_probability(a, t),
                oblivious_winning_probability_bruteforce(a, t))
          << "n=" << n << " t=" << t;
    }
  }
}

TEST(ObliviousWinning, DeterministicAllZeroEqualsIrwinHall) {
  // α = 1 for everyone → all inputs land in bin 0: P = IH_n(t).
  for (std::uint32_t n = 1; n <= 6; ++n) {
    const std::vector<Rational> alpha(n, Rational{1});
    for (int i = 1; i <= 8; ++i) {
      const Rational t{i, 2};
      EXPECT_EQ(oblivious_winning_probability(alpha, t), prob::irwin_hall_cdf(n, t));
    }
  }
}

TEST(ObliviousWinning, InvariantUnderAlphaComplement) {
  // Swapping bins (α → 1 − α) leaves the winning probability unchanged.
  const std::vector<Rational> alpha{Rational(1, 5), Rational(3, 4), Rational(2, 3)};
  std::vector<Rational> complement;
  for (const Rational& a : alpha) complement.push_back(Rational{1} - a);
  for (int i = 1; i <= 8; ++i) {
    const Rational t{i, 4};
    EXPECT_EQ(oblivious_winning_probability(alpha, t),
              oblivious_winning_probability(complement, t));
  }
}

TEST(ObliviousWinning, UniformIsBestAmongSymmetricProbes) {
  // Theorem 4.3 read precisely: among protocols where every player uses the
  // SAME probability (the anonymous/uniform setting the paper's interior
  // stationarity analysis covers), alpha = 1/2 is optimal.
  for (std::uint32_t n : {2u, 3u, 4u, 5u}) {
    const Rational t{static_cast<std::int64_t>(n), 3};
    const Rational best = optimal_oblivious_winning_probability(n, t);
    for (int i = 0; i <= 10; ++i) {
      const std::vector<Rational> alpha(n, Rational{i, 10});
      EXPECT_LE(oblivious_winning_probability(alpha, t), best) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ObliviousWinning, IdentityBasedCornersCanBeatUniformHalf) {
  // The optimality conditions (Corollary 4.2) are FIRST-ORDER INTERIOR
  // conditions: on the boundary of [0,1]^n they do not apply, and in fact a
  // deterministic identity-based split (half the players to each bin) beats
  // alpha = 1/2 — e.g. n = 3, t = 1: alpha = (0, 1, 1) achieves
  // IH_1(1) * IH_2(1) = 1/2 > 5/12. Such protocols need distinct player
  // identities, which the paper's anonymous setting excludes; we record the
  // fact here (see EXPERIMENTS.md, "scope of Theorem 4.3").
  const std::vector<Rational> corner{Rational{0}, Rational{1}, Rational{1}};
  EXPECT_EQ(oblivious_winning_probability(corner, Rational{1}), Rational(1, 2));
  EXPECT_GT(oblivious_winning_probability(corner, Rational{1}),
            optimal_oblivious_winning_probability(3, Rational{1}));
}

TEST(ObliviousWinning, SaturatesForLargeCapacity) {
  const std::vector<Rational> alpha(4, Rational(1, 2));
  EXPECT_EQ(oblivious_winning_probability(alpha, Rational{4}), Rational{1});
  EXPECT_EQ(oblivious_winning_probability(alpha, Rational{0}), Rational{0});
  EXPECT_EQ(oblivious_winning_probability(alpha, Rational{-1}), Rational{0});
}

TEST(ObliviousWinning, DoubleMatchesExact) {
  const std::vector<Rational> alpha{Rational(1, 3), Rational(2, 5), Rational(1, 2),
                                    Rational(7, 9)};
  std::vector<double> alpha_d;
  for (const Rational& a : alpha) alpha_d.push_back(a.to_double());
  for (int i = 1; i <= 10; ++i) {
    const Rational t{i, 4};
    EXPECT_NEAR(oblivious_winning_probability(alpha_d, t.to_double()),
                oblivious_winning_probability(alpha, t).to_double(), 1e-12);
  }
  for (std::uint32_t n = 1; n <= 10; ++n) {
    EXPECT_NEAR(optimal_oblivious_winning_probability_double(n, 1.5),
                optimal_oblivious_winning_probability(n, Rational(3, 2)).to_double(), 1e-12);
  }
}

TEST(ObliviousWinning, MatchesSimulation) {
  const std::vector<Rational> alpha{Rational(1, 4), Rational(2, 3), Rational(1, 2)};
  const ObliviousProtocol protocol{alpha};
  const Rational t{1};
  const double exact = oblivious_winning_probability(alpha, t).to_double();
  prob::Rng rng{2025};
  const sim::SimResult result =
      sim::estimate_winning_probability(protocol, t.to_double(), 400000, rng);
  EXPECT_TRUE(result.covers(exact)) << result.estimate << " vs " << exact;
}

TEST(ObliviousWinning, ValidatesInput) {
  EXPECT_THROW((void)oblivious_winning_probability(std::vector<Rational>{}, Rational{1}),
               std::invalid_argument);
  EXPECT_THROW((void)oblivious_winning_probability(std::vector<Rational>{Rational{2}},
                                                   Rational{1}),
               std::invalid_argument);
  EXPECT_THROW((void)optimal_oblivious_winning_probability(0, Rational{1}),
               std::invalid_argument);
}

TEST(ObliviousWinning, GrowsWithCapacity) {
  const std::vector<Rational> alpha(5, Rational(1, 2));
  Rational previous{-1};
  for (int i = 1; i <= 20; ++i) {
    const Rational t{i, 4};
    const Rational p = oblivious_winning_probability(alpha, t);
    EXPECT_GE(p, previous);
    previous = p;
  }
}

}  // namespace
}  // namespace ddm::core
