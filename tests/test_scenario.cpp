// test_scenario.cpp — the first-class Scenario seam, end to end.
//
// Covers: digest canonicalization and descriptor parsing (including
// near-collision ranges that must never share a digest), the ragged
// EvalRequest::general regression, scenario-keyed caching (PlanCache and
// BoundMemo must never hand a homogeneous artifact to a generalized digest),
// exact/mc/certified engine parity against the core/heterogeneous and
// core/deviating ground truth, the auto-selection and fallback-chain
// reshaping under generalized games, cost-model scenario rows, checkpoint
// header round-trips, and the ddm_serve NDJSON scenario field. The caching
// property tests are matrix-run under DDM_THREADS=1/4 (tests/CMakeLists.txt,
// label "scenario").
#include "engine/scenario.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/deviating.hpp"
#include "core/heterogeneous.hpp"
#include "core/nonoblivious.hpp"
#include "engine/bound_memo.hpp"
#include "engine/cost_model.hpp"
#include "engine/plan_cache.hpp"
#include "engine/registry.hpp"
#include "engine/resilient.hpp"
#include "prob/rng.hpp"
#include "util/checkpoint.hpp"
#include "util/rational.hpp"
#include "util/status.hpp"
#ifdef __unix__
#include "net/service.hpp"
#endif

namespace ddm {
namespace {

using engine::EvalOutcome;
using engine::EvalRequest;
using engine::Scenario;
using util::Rational;

std::vector<Rational> ranges3() {
  return {Rational(1, 2), Rational{1}, Rational{2}};
}

// --- digest canonicalization -----------------------------------------------

TEST(ScenarioDigest, CanonicalForms) {
  EXPECT_EQ(Scenario{}.digest(), "homogeneous");
  EXPECT_TRUE(Scenario{}.is_default());
  EXPECT_EQ(Scenario::homogeneous().digest(), "homogeneous");
  EXPECT_EQ(Scenario::heterogeneous(ranges3()).digest(), "heterogeneous:1/2,1,2");
  EXPECT_EQ(Scenario::deviating(2).digest(), "deviating:2");
  // Lowest terms: 2/4 and 1/2 are the same game and must share a digest.
  EXPECT_EQ(Scenario::heterogeneous({Rational(2, 4)}).digest(), "heterogeneous:1/2");
}

TEST(ScenarioDigest, NearCollisionRangesStayDistinct) {
  // "1/12,2" vs "1,12/2" vs "1,2": naive separator-free concatenation would
  // collide some of these; the canonical comma/slash form must not.
  const Scenario a = Scenario::heterogeneous({Rational(1, 12), Rational{2}});
  const Scenario b = Scenario::heterogeneous({Rational{1}, Rational(12, 2)});
  const Scenario c = Scenario::heterogeneous({Rational{1}, Rational{2}});
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
  EXPECT_NE(b.digest(), c.digest());
  EXPECT_FALSE(a == b);
}

TEST(ScenarioParse, RoundTripsDigest) {
  for (const Scenario& scenario :
       {Scenario::homogeneous(), Scenario::heterogeneous(ranges3()), Scenario::deviating(3)}) {
    const Scenario reparsed = Scenario::parse(scenario.digest());
    EXPECT_EQ(reparsed.digest(), scenario.digest());
    EXPECT_EQ(reparsed.kind(), scenario.kind());
  }
  EXPECT_EQ(Scenario::parse("heterogeneous:2/4,1").digest(), "heterogeneous:1/2,1");
}

TEST(ScenarioParse, RejectsMalformedDescriptors) {
  EXPECT_THROW((void)Scenario::parse(""), Error);
  EXPECT_THROW((void)Scenario::parse("exotic"), Error);
  EXPECT_THROW((void)Scenario::parse("homogeneous:1"), Error);
  EXPECT_THROW((void)Scenario::parse("heterogeneous"), Error);
  EXPECT_THROW((void)Scenario::parse("heterogeneous:"), Error);
  EXPECT_THROW((void)Scenario::parse("heterogeneous:1,,2"), Error);
  EXPECT_THROW((void)Scenario::parse("heterogeneous:1,x"), Error);
  EXPECT_THROW((void)Scenario::parse("heterogeneous:0,1"), Error);
  EXPECT_THROW((void)Scenario::parse("heterogeneous:-1"), Error);
  EXPECT_THROW((void)Scenario::parse("deviating"), Error);
  EXPECT_THROW((void)Scenario::parse("deviating:"), Error);
  EXPECT_THROW((void)Scenario::parse("deviating:0"), Error);
  EXPECT_THROW((void)Scenario::parse("deviating:two"), Error);
}

TEST(ScenarioParse, CheckPlayersValidatesShape) {
  EXPECT_NO_THROW(Scenario::heterogeneous(ranges3()).check_players(3, "test"));
  EXPECT_THROW(Scenario::heterogeneous(ranges3()).check_players(4, "test"), Error);
  EXPECT_NO_THROW(Scenario::deviating(2).check_players(3, "test"));
  EXPECT_THROW(Scenario::deviating(3).check_players(3, "test"), Error);
  EXPECT_NO_THROW(Scenario{}.check_players(100, "test"));
}

// --- EvalRequest::general ragged-batch regression ---------------------------

TEST(EvalRequestGeneral, AcceptsUniformBatch) {
  const EvalRequest request =
      EvalRequest::general({{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}}, Rational{1});
  EXPECT_EQ(request.n, 3u);
  EXPECT_EQ(request.size(), 2u);
}

TEST(EvalRequestGeneral, RejectsRaggedBatchNamingOffendingPoint) {
  try {
    (void)EvalRequest::general({{0.1, 0.2, 0.3}, {0.4, 0.5}, {0.6, 0.7, 0.8}}, Rational{1});
    FAIL() << "ragged batch must throw";
  } catch (const Error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("point 1"), std::string::npos) << what;
    EXPECT_NE(what.find("ragged"), std::string::npos) << what;
  }
}

// --- scenario-keyed caching (PlanCache + BoundMemo) -------------------------

TEST(ScenarioCaching, PlanCacheKeysOnDigest) {
  engine::PlanCache cache(8);
  const Rational t{1};
  const auto homogeneous = cache.get_or_lower(3, t);
  ASSERT_NE(homogeneous, nullptr);
  EXPECT_EQ(cache.size(), 1u);
  // The legacy empty digest and the homogeneous digest are the SAME key —
  // pre-scenario callers and scenario-aware callers share one entry.
  EXPECT_EQ(cache.get_or_lower(3, t, "homogeneous").get(), homogeneous.get());
  EXPECT_EQ(cache.size(), 1u);
  // A generalized digest is a different key: the homogeneous plan must never
  // satisfy it, even for adversarially similar ranges.
  const auto het_a = cache.get_or_lower(3, t, "heterogeneous:1/12,2,1");
  const auto het_b = cache.get_or_lower(3, t, "heterogeneous:1,12/2,1");
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_NE(het_a.get(), homogeneous.get());
  EXPECT_NE(het_b.get(), homogeneous.get());
  EXPECT_NE(het_a.get(), het_b.get());
  // Repeat lookups hit their own entries, never a neighbor's.
  EXPECT_EQ(cache.get_or_lower(3, t, "heterogeneous:1/12,2,1").get(), het_a.get());
  EXPECT_EQ(cache.size(), 3u);
}

TEST(ScenarioCaching, BoundMemoNeverCrossesScenarios) {
  engine::BoundMemo memo;
  const Rational t{1};
  memo.store(3, t, "homogeneous", 1e-12);
  EXPECT_TRUE(memo.lookup(3, t, "homogeneous").has_value());
  // The homogeneous bound must not answer a generalized lookup (same n, t —
  // same direct-mapped slot — different game).
  EXPECT_FALSE(memo.lookup(3, t, "heterogeneous:1/12,2,1").has_value());
  EXPECT_FALSE(memo.lookup(3, t, "deviating:1").has_value());
  memo.store(3, t, "heterogeneous:1/12,2,1", 2e-12);
  EXPECT_FALSE(memo.lookup(3, t, "homogeneous").has_value());  // slot re-keyed
  EXPECT_FALSE(memo.lookup(3, t, "heterogeneous:1,12/2,1").has_value());
  const auto found = memo.lookup(3, t, "heterogeneous:1/12,2,1");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 2e-12);
}

// --- engine parity against the core ground truth ----------------------------

TEST(ScenarioEngines, ExactMatchesCoreHeterogeneous) {
  const Rational t(6, 5);
  const std::vector<Rational> ranges = ranges3();
  auto request = EvalRequest::symmetric(3, t, {0.0, 0.25, 0.5, 0.75, 1.0});
  request.exact_betas = {Rational{0}, Rational(1, 4), Rational(1, 2), Rational(3, 4),
                         Rational{1}};
  request.scenario = Scenario::heterogeneous(ranges);
  const engine::Evaluator* exact = engine::Registry::instance().find("exact");
  ASSERT_NE(exact, nullptr);
  ASSERT_TRUE(exact->supports(request));
  const EvalOutcome outcome = exact->evaluate(request);
  for (std::size_t k = 0; k < request.exact_betas.size(); ++k) {
    // Symmetric beta is RELATIVE under heterogeneous ranges: a_i = beta·c_i.
    std::vector<Rational> thresholds;
    for (const Rational& c : ranges) thresholds.push_back(request.exact_betas[k] * c);
    const Rational expected =
        core::heterogeneous_threshold_winning_probability(thresholds, ranges, t);
    EXPECT_DOUBLE_EQ(outcome.values[k], expected.to_double()) << "k=" << k;
  }
}

TEST(ScenarioEngines, ExactGeneralPointsAreAbsoluteThresholds) {
  const Rational t(6, 5);
  const std::vector<Rational> ranges = ranges3();
  // General points carry per-player ABSOLUTE thresholds (a_i, not beta).
  auto request = EvalRequest::general({{0.25, 0.4, 1.0}}, t);
  request.scenario = Scenario::heterogeneous(ranges);
  const engine::Evaluator* exact = engine::Registry::instance().find("exact");
  ASSERT_TRUE(exact->supports(request));
  const EvalOutcome outcome = exact->evaluate(request);
  const std::vector<Rational> thresholds{Rational(1, 4), Rational(2, 5), Rational{1}};
  const Rational expected =
      core::heterogeneous_threshold_winning_probability(thresholds, ranges, t);
  EXPECT_DOUBLE_EQ(outcome.values.at(0), expected.to_double());
}

TEST(ScenarioEngines, MonteCarloTracksExactHeterogeneous) {
  const Rational t(6, 5);
  auto request = EvalRequest::symmetric(3, t, {0.5});
  request.scenario = Scenario::heterogeneous(ranges3());
  request.trials = 400000;
  const engine::Evaluator* exact = engine::Registry::instance().find("exact");
  const engine::Evaluator* mc = engine::Registry::instance().find("mc");
  ASSERT_NE(mc, nullptr);
  ASSERT_TRUE(mc->supports(request));
  const double reference = exact->evaluate(request).values.at(0);
  const double estimate = mc->evaluate(request).values.at(0);
  // ~6 sigma at 400k trials for a probability near 0.5 is under 0.005.
  EXPECT_NEAR(estimate, reference, 0.005);
}

TEST(ScenarioEngines, MonteCarloTracksExactDeviating) {
  const Rational t{2};
  auto request = EvalRequest::symmetric(6, t, {0.62});
  request.scenario = Scenario::deviating(2);
  request.trials = 400000;
  const engine::Evaluator* mc = engine::Registry::instance().find("mc");
  ASSERT_TRUE(mc->supports(request));
  const double estimate = mc->evaluate(request).values.at(0);
  const double reference =
      core::worst_case_deviating_winning_probability(6, 2, Rational(62, 100), t).to_double();
  EXPECT_NEAR(estimate, reference, 0.005);
}

TEST(ScenarioEngines, CertifiedReturnsExactTierEnclosures) {
  auto request = EvalRequest::symmetric(3, Rational{1}, {0.25, 0.5});
  request.exact_betas = {Rational(1, 4), Rational(1, 2)};
  request.scenario = Scenario::heterogeneous(ranges3());
  const engine::Evaluator* certified = engine::Registry::instance().find("certified");
  ASSERT_NE(certified, nullptr);
  ASSERT_TRUE(certified->supports(request));
  const EvalOutcome outcome = certified->evaluate(request);
  ASSERT_EQ(outcome.certificates.size(), 2u);
  for (const CertifiedValue& certificate : outcome.certificates) {
    EXPECT_EQ(certificate.tier, EvalTier::kExact);
    EXPECT_EQ(certificate.width().signum(), 0);
    EXPECT_TRUE(certificate.met_tolerance);
  }
  EXPECT_EQ(outcome.certificate_bound, 0.0);
}

TEST(ScenarioEngines, HomogeneousOnlyEnginesDeclineGeneralizedGames) {
  auto request = EvalRequest::symmetric(3, Rational{1}, {0.5});
  request.scenario = Scenario::deviating(1);
  for (const char* id : {"kernel", "batch", "compiled"}) {
    const engine::Evaluator* evaluator = engine::Registry::instance().find(id);
    ASSERT_NE(evaluator, nullptr) << id;
    EXPECT_FALSE(evaluator->supports(request)) << id;
  }
  for (const char* id : {"exact", "certified", "mc"}) {
    const engine::Evaluator* evaluator = engine::Registry::instance().find(id);
    ASSERT_NE(evaluator, nullptr) << id;
    EXPECT_TRUE(evaluator->supports(request)) << id;
  }
}

// --- deviating core math -----------------------------------------------------

TEST(DeviatingCore, ZeroDeviatorsReduceToTheorem51) {
  for (int num = 0; num <= 4; ++num) {
    const Rational beta{num, 4};
    const Rational t{1};
    EXPECT_EQ(core::deviating_threshold_winning_probability(3, 0, 0, beta, t),
              core::symmetric_threshold_winning_probability(3, beta, t))
        << "beta=" << beta;
  }
}

TEST(DeviatingCore, WorstCaseIsMinOverStrategies) {
  const Rational beta(62, 100);
  const Rational t{2};
  const Rational worst = core::worst_case_deviating_winning_probability(6, 2, beta, t);
  for (std::uint32_t j = 0; j <= 2; ++j) {
    EXPECT_LE(worst, core::deviating_threshold_winning_probability(6, 2, j, beta, t))
        << "j=" << j;
  }
}

TEST(DeviatingCore, DeviatorsOnlyHurt) {
  const Rational beta(62, 100);
  const Rational t{2};
  const Rational undisturbed = core::symmetric_threshold_winning_probability(6, beta, t);
  EXPECT_LE(core::worst_case_deviating_winning_probability(6, 1, beta, t), undisturbed);
}

TEST(DeviatingCore, EdgeBetasAreServed) {
  // beta = 0 and beta = 1 exercise the zero-weight-term skip.
  const Rational t{2};
  EXPECT_NO_THROW((void)core::worst_case_deviating_winning_probability(5, 2, Rational{0}, t));
  EXPECT_NO_THROW((void)core::worst_case_deviating_winning_probability(5, 2, Rational{1}, t));
}

TEST(DeviatingCore, ValidationThrows) {
  EXPECT_THROW((void)core::worst_case_deviating_winning_probability(0, 0, Rational(1, 2),
                                                                    Rational{1}),
               Error);
  EXPECT_THROW((void)core::worst_case_deviating_winning_probability(3, 3, Rational(1, 2),
                                                                    Rational{1}),
               Error);
  EXPECT_THROW((void)core::worst_case_deviating_winning_probability(3, 1, Rational{2},
                                                                    Rational{1}),
               Error);
  EXPECT_THROW((void)core::worst_case_deviating_winning_probability(15, 1, Rational(1, 2),
                                                                    Rational{5}),
               Error);
  EXPECT_THROW((void)Scenario::deviating(0), Error);
}

TEST(DeviatingCore, SimulationTracksExactWorstCase) {
  prob::Rng rng{42};
  const core::DeviatingSimResult sim =
      core::estimate_worst_case_deviating(6, 2, 0.62, 2.0, 200000, rng);
  const double reference =
      core::worst_case_deviating_winning_probability(6, 2, Rational(62, 100), Rational{2})
          .to_double();
  EXPECT_NEAR(sim.estimate, reference, 0.01);
}

// --- selection + fallback chains under generalized games --------------------

TEST(ScenarioSelection, AutoPicksExactWithinCapAndMcBeyond) {
  engine::EnginePolicy policy;  // auto
  auto small = EvalRequest::symmetric(3, Rational{1}, {0.5});
  small.scenario = Scenario::deviating(1);
  const engine::Selection within = engine::select(policy, small);
  EXPECT_EQ(within.id(), "exact");
  EXPECT_FALSE(within.fallback);

  auto large = EvalRequest::symmetric(20, Rational{7}, {0.5});
  large.scenario = Scenario::heterogeneous(std::vector<Rational>(20, Rational(1, 2)));
  const engine::Selection beyond = engine::select(policy, large);
  EXPECT_EQ(beyond.id(), "mc");
  EXPECT_TRUE(beyond.fallback);
  EXPECT_FALSE(beyond.note.empty());
}

TEST(ScenarioSelection, FallbackChainsReshape) {
  const Scenario generalized = Scenario::deviating(1);
  EXPECT_EQ(engine::fallback_chain("exact", generalized),
            (std::vector<std::string_view>{"mc"}));
  EXPECT_EQ(engine::fallback_chain("certified", generalized),
            (std::vector<std::string_view>{"mc"}));
  EXPECT_TRUE(engine::fallback_chain("compiled", generalized).empty());
  // The one-argument form stays the homogeneous table.
  EXPECT_EQ(engine::fallback_chain("compiled"),
            (std::vector<std::string_view>{"batch", "kernel"}));
}

// --- cost-model scenario rows ------------------------------------------------

TEST(ScenarioCostModel, ObserveAndPredictArePerScenario) {
  engine::CostModel model;
  model.set_cell("mc", 4, 16, 1e-6);
  // Default-scenario reads: legacy empty and the homogeneous digest are the
  // same row.
  EXPECT_DOUBLE_EQ(model.predict("mc", 4, 16), 1e-6);
  EXPECT_DOUBLE_EQ(model.predict("mc", 4, 16, "homogeneous"), 1e-6);
  // A generalized digest has no data yet: +infinity, never the bare row.
  EXPECT_TRUE(std::isinf(model.predict("mc", 4, 16, "deviating:2")));
  model.observe("mc", 4, 16, 5e-5, "deviating:2");
  EXPECT_NEAR(model.predict("mc", 4, 16, "deviating:2"), 5e-5, 5e-14);
  EXPECT_DOUBLE_EQ(model.predict("mc", 4, 16), 1e-6);  // bare row untouched
}

TEST(ScenarioCostModel, RowsSurviveSaveLoadRoundTrip) {
  engine::CostModel model;
  model.set_cell("mc", 4, 16, 1e-6);
  model.observe("mc", 4, 16, 5e-5, "heterogeneous:1/2,1,2,1");
  const std::string path = testing::TempDir() + "scenario_policy.ddmpolicy";
  model.save(path);
  const auto loaded = engine::CostModel::load(path, "test");
  EXPECT_DOUBLE_EQ(loaded->predict("mc", 4, 16), 1e-6);
  EXPECT_NEAR(loaded->predict("mc", 4, 16, "heterogeneous:1/2,1,2,1"), 5e-5, 5e-14);
  EXPECT_TRUE(std::isinf(loaded->predict("mc", 4, 16, "heterogeneous:1,2,1,2")));
  std::remove(path.c_str());
}

TEST(ScenarioCostModel, LoadRejectsMalformedScenarioRows) {
  engine::CostModel model;
  model.set_cell("mc", 4, 16, 1e-6);
  const std::string path = testing::TempDir() + "scenario_policy_bad.ddmpolicy";
  model.save(path);
  // Corrupt the cell's scenario token; the checksum guards bytes, so rebuild
  // the file wholesale with a bogus digest but a fresh checksum via observe.
  engine::CostModel bad;
  bad.observe("mc", 4, 16, 1e-6, "deviating:0");  // never produced by Scenario
  const std::string bad_path = testing::TempDir() + "scenario_policy_bad2.ddmpolicy";
  bad.save(bad_path);
  EXPECT_THROW((void)engine::CostModel::load(bad_path, "test"), PolicyError);
  std::remove(path.c_str());
  std::remove(bad_path.c_str());
}

// --- checkpoint headers ------------------------------------------------------

TEST(ScenarioCheckpoint, HeaderRoundTripsScenario) {
  const std::string path = testing::TempDir() + "scenario_sweep.ckpt";
  util::SweepParams params;
  params.n = 3;
  params.t = "1";
  params.beta_lo = "0";
  params.beta_hi = "1";
  params.steps = 4;
  params.engine = "auto";
  params.resolved = "exact";
  params.scenario = "heterogeneous:1/2,1,2";
  {
    util::SweepCheckpoint checkpoint(path, params, false);
    checkpoint.append({0, 0.0, 0.5});
  }
  const util::LoadedCheckpoint loaded = util::read_checkpoint(path);
  EXPECT_EQ(loaded.params.scenario, "heterogeneous:1/2,1,2");
  EXPECT_EQ(loaded.params, params);
  // Resuming under a different game must fail naming the scenario field.
  util::SweepParams other = params;
  other.scenario = "homogeneous";
  try {
    util::SweepCheckpoint resume(path, other, true);
    FAIL() << "scenario mismatch must throw";
  } catch (const CheckpointError& error) {
    EXPECT_NE(std::string(error.what()).find("scenario"), std::string::npos) << error.what();
  }
  std::remove(path.c_str());
}

TEST(ScenarioCheckpoint, PreScenarioHeadersParseAsHomogeneous) {
  const std::string path = testing::TempDir() + "legacy_sweep.ckpt";
  {
    std::ofstream out(path);
    out << "{\"sweep\": {\"n\": 3, \"t\": \"1\", \"beta_lo\": \"0\", \"beta_hi\": \"1\", "
           "\"steps\": 4, \"engine\": \"auto\", \"resolved\": \"exact\", \"shard\": "
           "\"0/1\"}}\n"
        << "{\"k\": 0, \"beta\": 0, \"p_win\": 0.5}\n";
  }
  const util::LoadedCheckpoint loaded = util::read_checkpoint(path);
  EXPECT_EQ(loaded.params.scenario, "homogeneous");
  std::remove(path.c_str());
}

// --- ddm_serve scenario field ------------------------------------------------

#ifdef __unix__
TEST(ScenarioServe, ThresholdEvaluatesGeneralizedGames) {
  net::ServiceConfig config;
  config.workers = 1;
  net::EvalService service(config);
  const std::string reply = service.handle_line(
      R"({"op": "threshold", "n": 3, "t": "6/5", "beta": 0.5, )"
      R"("scenario": "heterogeneous:1/2,1,2"})");
  EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"scenario\":\"heterogeneous:1/2,1,2\""), std::string::npos) << reply;
  // The value must be the exact heterogeneous ground truth.
  std::vector<Rational> thresholds{Rational(1, 4), Rational(1, 2), Rational{1}};
  const double expected =
      core::heterogeneous_threshold_winning_probability(thresholds, ranges3(), Rational(6, 5))
          .to_double();
  char value_text[64];
  std::snprintf(value_text, sizeof value_text, "%.6f", expected);
  EXPECT_NE(reply.find("\"engine\":\"exact\""), std::string::npos) << reply;
  EXPECT_NE(reply.find(std::string(value_text).substr(0, 7)), std::string::npos) << reply;
}

TEST(ScenarioServe, MalformedScenariosAreBadRequests) {
  net::ServiceConfig config;
  config.workers = 1;
  net::EvalService service(config);
  for (const char* line : {
           R"({"op": "threshold", "n": 3, "t": 1, "beta": 0.5, "scenario": "exotic"})",
           R"({"op": "threshold", "n": 3, "t": 1, "beta": 0.5, "scenario": "deviating:0"})",
           R"({"op": "threshold", "n": 3, "t": 1, "beta": 0.5, "scenario": "deviating:3"})",
           R"({"op": "threshold", "n": 3, "t": 1, "beta": 0.5, )"
           R"("scenario": "heterogeneous:1/2,1"})",
           R"({"op": "threshold", "n": 3, "t": 1, "beta": 0.5, )"
           R"("scenario": "heterogeneous:1,0,1"})",
           R"({"op": "analyze", "n": 3, "t": 1, "scenario": "deviating:1"})",
       }) {
    const std::string reply = service.handle_line(line);
    EXPECT_NE(reply.find("\"error\":\"bad_request\""), std::string::npos)
        << line << " -> " << reply;
  }
  // The default game stays served without a scenario field.
  const std::string ok = service.handle_line(R"({"op": "threshold", "n": 3, "t": 1, )"
                                             R"("beta": 0.5})");
  EXPECT_NE(ok.find("\"ok\":true"), std::string::npos) << ok;
  EXPECT_EQ(ok.find("scenario"), std::string::npos) << ok;
}
#endif  // __unix__

}  // namespace
}  // namespace ddm
