// Cross-module property tests: heavier randomized/parameterized invariants
// tying several layers together (the "does the whole stack cohere" suite).
#include <gtest/gtest.h>

#include <random>
#include <tuple>
#include <vector>

#include "core/nonoblivious.hpp"
#include "core/oblivious.hpp"
#include "core/symmetric_threshold.hpp"
#include "geom/volume.hpp"
#include "poly/interpolate.hpp"
#include "poly/polynomial.hpp"
#include "poly/roots.hpp"
#include "prob/uniform_sum.hpp"
#include "util/bigint.hpp"
#include "util/rational.hpp"

namespace ddm {
namespace {

using poly::QPoly;
using util::BigInt;
using util::Rational;

// ---------------------------------------------------------------------------
// BigInt: Knuth-D stress on adversarial limb patterns (the add-back branch
// triggers when the trial quotient digit overshoots; these shapes are the
// classic provokers).
// ---------------------------------------------------------------------------

TEST(Property, BigIntDivisionAdversarialPatterns) {
  std::vector<BigInt> specials;
  // Powers of two around limb boundaries, +/- 1, and 0xFFFF... patterns.
  for (const int bits : {31, 32, 33, 63, 64, 65, 95, 96, 127, 128, 160, 192}) {
    const BigInt p = BigInt::pow(BigInt{2}, static_cast<std::uint64_t>(bits));
    specials.push_back(p);
    specials.push_back(p - BigInt{1});
    specials.push_back(p + BigInt{1});
    specials.push_back(p - BigInt{0x7fffffffLL});
  }
  for (const BigInt& a : specials) {
    for (const BigInt& b : specials) {
      if (b.is_zero()) continue;
      const auto [q, r] = BigInt::div_mod(a, b);
      EXPECT_EQ(q * b + r, a) << a << " / " << b;
      EXPECT_TRUE(r.abs() < b.abs());
      EXPECT_TRUE(r.is_zero() || r.signum() == a.signum());
    }
  }
}

TEST(Property, BigIntDivisionAddBackShape) {
  // Canonical Hacker's-Delight add-back trigger: dividend window top limbs
  // nearly equal to the divisor's. Construct many near-miss shapes.
  std::mt19937_64 gen{80443};
  for (int iter = 0; iter < 200; ++iter) {
    BigInt v = (BigInt{1} << 95) + (BigInt{static_cast<std::int64_t>(gen() % 1000)} << 32) +
               BigInt{static_cast<std::int64_t>(gen() % 1000)};
    BigInt u = v * BigInt{static_cast<std::int64_t>(gen() % 1000 + 1)} +
               (v - BigInt{1 + static_cast<std::int64_t>(gen() % 1000)});
    const auto [q, r] = BigInt::div_mod(u, v);
    EXPECT_EQ(q * v + r, u);
    EXPECT_TRUE(r.abs() < v.abs());
  }
}

// ---------------------------------------------------------------------------
// Polynomial algebra coherence.
// ---------------------------------------------------------------------------

QPoly random_poly(std::mt19937_64& gen, int max_degree) {
  std::vector<Rational> coeffs;
  const int degree = static_cast<int>(gen() % static_cast<std::uint64_t>(max_degree + 1));
  for (int i = 0; i <= degree; ++i) {
    coeffs.emplace_back(static_cast<std::int64_t>(gen() % 19) - 9,
                        1 + static_cast<std::int64_t>(gen() % 7));
  }
  return QPoly{std::move(coeffs)};
}

TEST(Property, ComposeIsAssociativeAndEvaluationCompatible) {
  std::mt19937_64 gen{777};
  for (int iter = 0; iter < 40; ++iter) {
    const QPoly f = random_poly(gen, 4);
    const QPoly g = random_poly(gen, 3);
    const QPoly h = random_poly(gen, 2);
    EXPECT_EQ(f.compose(g).compose(h), f.compose(g.compose(h)));
    const Rational x{static_cast<std::int64_t>(gen() % 13) - 6, 5};
    EXPECT_EQ(f.compose(g)(x), f(g(x)));
  }
}

TEST(Property, DerivativeIsLinearAndLeibniz) {
  std::mt19937_64 gen{778};
  for (int iter = 0; iter < 40; ++iter) {
    const QPoly f = random_poly(gen, 5);
    const QPoly g = random_poly(gen, 5);
    EXPECT_EQ((f + g).derivative(), f.derivative() + g.derivative());
    EXPECT_EQ((f * g).derivative(), f.derivative() * g + f * g.derivative());
    EXPECT_EQ(f.antiderivative().derivative(), f);
  }
}

TEST(Property, InterpolationInvertsEvaluation) {
  std::mt19937_64 gen{779};
  for (int iter = 0; iter < 25; ++iter) {
    const QPoly f = random_poly(gen, 6);
    std::vector<std::pair<Rational, Rational>> points;
    for (int i = 0; i <= 6; ++i) {
      const Rational x{2 * i + 1, 15};
      points.emplace_back(x, f(x));
    }
    EXPECT_EQ(poly::lagrange_interpolate(points), f);
  }
}

TEST(Property, RootsOfRandomProductsAreAllFound) {
  // Build polynomials with known rational roots; isolation must find exactly
  // the distinct ones, each bracketed correctly.
  std::mt19937_64 gen{780};
  for (int iter = 0; iter < 25; ++iter) {
    std::vector<Rational> roots;
    QPoly p{Rational{1}};
    const int count = 2 + static_cast<int>(gen() % 4);
    for (int k = 0; k < count; ++k) {
      const Rational root{static_cast<std::int64_t>(gen() % 21) - 10,
                          1 + static_cast<std::int64_t>(gen() % 6)};
      roots.push_back(root);
      p = p * QPoly{std::vector<Rational>{-root, Rational{1}}};
    }
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
    const auto found = poly::isolate_all_roots(p);
    ASSERT_EQ(found.size(), roots.size()) << p.to_string();
    for (std::size_t i = 0; i < roots.size(); ++i) {
      EXPECT_LE(found[i].lo, roots[i]);
      EXPECT_GE(found[i].hi, roots[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// Geometry ↔ probability coherence: Lemma 2.4 IS Proposition 2.2.
// ---------------------------------------------------------------------------

TEST(Property, SumUniformCdfEqualsVolumeRatio) {
  std::mt19937_64 gen{781};
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t m = 1 + gen() % 4;
    std::vector<Rational> pi;
    for (std::size_t l = 0; l < m; ++l) {
      pi.emplace_back(1 + static_cast<std::int64_t>(gen() % 8), 4);
    }
    const Rational t{1 + static_cast<std::int64_t>(gen() % 12), 4};
    // Vol({x in box : Σ x <= t}) / Vol(box) — simplex sides all t.
    const std::vector<Rational> sigma(m, t);
    const Rational ratio =
        geom::simplex_box_volume(sigma, pi) / geom::box_volume(pi);
    EXPECT_EQ(prob::sum_uniform_cdf(pi, t), ratio) << "m=" << m << " t=" << t;
  }
}

// ---------------------------------------------------------------------------
// Winning-probability coherence across engines.
// ---------------------------------------------------------------------------

class EngineAgreement : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(EngineAgreement, ObliviousMonotoneInCommonAlphaTowardHalf) {
  // Moving a symmetric alpha toward 1/2 never hurts (unimodality along the
  // diagonal, the computational content of Lemma 4.6).
  const auto [n, t_num] = GetParam();
  const Rational t{t_num, 3};
  Rational previous{-1};
  for (int i = 0; i <= 10; ++i) {  // alpha = i/20 from 0 to 1/2
    const std::vector<Rational> alpha(n, Rational{i, 20});
    const Rational p = core::oblivious_winning_probability(alpha, t);
    EXPECT_GE(p, previous) << "alpha=" << i << "/20";
    previous = p;
  }
}

TEST_P(EngineAgreement, SymbolicPieceMatchesEngineAtBreakpoints) {
  // Continuity at breakpoints ties the piecewise construction to the
  // numeric engine exactly where the indicator pattern changes.
  const auto [n, t_num] = GetParam();
  const Rational t{t_num, 3};
  const auto analysis = core::SymmetricThresholdAnalysis::build(n, t);
  for (const Rational& breakpoint : analysis.breakpoints()) {
    EXPECT_EQ(analysis.winning_probability()(breakpoint),
              core::symmetric_threshold_winning_probability(n, breakpoint, t));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, EngineAgreement,
                         ::testing::Combine(::testing::Values(2u, 3u, 4u, 5u, 6u),
                                            ::testing::Values(2, 3, 4, 5)),
                         [](const auto& info) {
                           return "n" + std::to_string(std::get<0>(info.param)) + "_t" +
                                  std::to_string(std::get<1>(info.param)) + "over3";
                         });

}  // namespace
}  // namespace ddm
