// Tests for the probabilistic tools of Section 2.2 (Lemmas 2.4, 2.5, 2.7;
// Corollary 2.6) against hand calculations, sampling, and each other.
#include "prob/uniform_sum.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "prob/empirical.hpp"
#include "prob/rng.hpp"

namespace ddm::prob {
namespace {

using util::Rational;

std::vector<Rational> rvec(std::initializer_list<Rational> values) { return {values}; }

// ---------- Corollary 2.6: Irwin–Hall -----------------------------------------

TEST(IrwinHall, KnownValues) {
  // F_1(t) = t on [0,1].
  EXPECT_EQ(irwin_hall_cdf(1, Rational(1, 3)), Rational(1, 3));
  // F_2(1) = 1/2, F_3(1) = 1/6, F_3(3/2) = 1/2 (symmetry).
  EXPECT_EQ(irwin_hall_cdf(2, Rational{1}), Rational(1, 2));
  EXPECT_EQ(irwin_hall_cdf(3, Rational{1}), Rational(1, 6));
  EXPECT_EQ(irwin_hall_cdf(3, Rational(3, 2)), Rational(1, 2));
  // F_2(3/2) = 1 − (2−3/2)²/2 = 7/8.
  EXPECT_EQ(irwin_hall_cdf(2, Rational(3, 2)), Rational(7, 8));
  // F_m(m) = 1, F_m(0) = 0.
  EXPECT_EQ(irwin_hall_cdf(4, Rational{4}), Rational{1});
  EXPECT_EQ(irwin_hall_cdf(4, Rational{0}), Rational{0});
}

TEST(IrwinHall, EdgeCases) {
  EXPECT_EQ(irwin_hall_cdf(0, Rational{1}), Rational{1});   // empty sum is 0 <= t
  EXPECT_EQ(irwin_hall_cdf(0, Rational(1, 100)), Rational{1});
  EXPECT_EQ(irwin_hall_cdf(3, Rational{-1}), Rational{0});
  EXPECT_EQ(irwin_hall_cdf(3, Rational{17}), Rational{1});  // saturates above m
}

TEST(IrwinHall, SymmetryAroundMean) {
  // F_m(t) + F_m(m − t) = 1 for the symmetric Irwin–Hall distribution.
  for (std::uint32_t m = 1; m <= 8; ++m) {
    for (int i = 0; i <= 10; ++i) {
      const Rational t = Rational{static_cast<std::int64_t>(m)} * Rational{i, 10};
      const Rational mirrored = Rational{static_cast<std::int64_t>(m)} - t;
      EXPECT_EQ(irwin_hall_cdf(m, t) + irwin_hall_cdf(m, mirrored), Rational{1})
          << "m=" << m << " t=" << t;
    }
  }
}

TEST(IrwinHall, MonotoneNondecreasing) {
  for (std::uint32_t m = 1; m <= 6; ++m) {
    Rational previous{-1};
    for (int i = 0; i <= 30; ++i) {
      const Rational t{i, 5};
      const Rational f = irwin_hall_cdf(m, t);
      EXPECT_GE(f, previous);
      EXPECT_GE(f, Rational{0});
      EXPECT_LE(f, Rational{1});
      previous = f;
    }
  }
}

TEST(IrwinHall, MatchesGeneralLemma24) {
  // Corollary 2.6 is Lemma 2.4 with all π_i = 1.
  for (std::uint32_t m = 1; m <= 7; ++m) {
    const std::vector<Rational> pi(m, Rational{1});
    for (int i = 1; i <= 12; ++i) {
      const Rational t{i, 4};
      EXPECT_EQ(irwin_hall_cdf(m, t), sum_uniform_cdf(pi, t)) << "m=" << m << " t=" << t;
    }
  }
}

TEST(IrwinHall, DoubleMatchesExact) {
  for (std::uint32_t m = 1; m <= 12; ++m) {
    for (int i = 0; i <= 20; ++i) {
      const Rational t = Rational{static_cast<std::int64_t>(m)} * Rational{i, 20};
      EXPECT_NEAR(irwin_hall_cdf(m, t.to_double()), irwin_hall_cdf(m, t).to_double(), 1e-10);
    }
  }
}

// ---------- Lemma 2.4: heterogeneous uniform sums ------------------------------

TEST(SumUniformCdf, SingleVariable) {
  const auto pi = rvec({Rational(1, 2)});
  EXPECT_EQ(sum_uniform_cdf(pi, Rational(1, 4)), Rational(1, 2));  // P(U[0,1/2] <= 1/4)
  EXPECT_EQ(sum_uniform_cdf(pi, Rational{1}), Rational{1});
  EXPECT_EQ(sum_uniform_cdf(pi, Rational{-1}), Rational{0});
}

TEST(SumUniformCdf, TwoVariablesHandIntegrated) {
  // x ~ U[0,1], y ~ U[0,1/2], P(x + y <= 1/2) = area of triangle (1/2)(1/2)²
  // normalized by 1/2 → 1/4.
  const auto pi = rvec({Rational{1}, Rational(1, 2)});
  EXPECT_EQ(sum_uniform_cdf(pi, Rational(1, 2)), Rational(1, 4));
  // P(x + y <= 1) = 1 − P(x + y > 1); complement is the triangle with legs
  // 1/2, 1/2 → area 1/8; normalized: 1 − (1/8)/(1/2) = 3/4.
  EXPECT_EQ(sum_uniform_cdf(pi, Rational{1}), Rational(3, 4));
  // Saturation at the top of the support.
  EXPECT_EQ(sum_uniform_cdf(pi, Rational(3, 2)), Rational{1});
}

TEST(SumUniformCdf, InvariantUnderPermutation) {
  const auto a = rvec({Rational(1, 3), Rational(2, 3), Rational{1}});
  const auto b = rvec({Rational{1}, Rational(1, 3), Rational(2, 3)});
  for (int i = 1; i <= 8; ++i) {
    const Rational t{i, 4};
    EXPECT_EQ(sum_uniform_cdf(a, t), sum_uniform_cdf(b, t));
  }
}

TEST(SumUniformCdf, EmptyCollection) {
  EXPECT_EQ(sum_uniform_cdf(std::vector<Rational>{}, Rational{1}), Rational{1});
  EXPECT_EQ(sum_uniform_cdf(std::vector<Rational>{}, Rational{-1}), Rational{0});
}

TEST(SumUniformCdf, RejectsNonPositiveRanges) {
  EXPECT_THROW((void)sum_uniform_cdf(rvec({Rational{0}}), Rational{1}), std::invalid_argument);
  EXPECT_THROW((void)sum_uniform_cdf(rvec({Rational{-1}}), Rational{1}), std::invalid_argument);
}

TEST(SumUniformCdf, AgainstSampling) {
  const std::vector<double> pi{0.5, 0.8, 0.3};
  Rng rng{77};
  std::vector<double> samples;
  samples.reserve(200000);
  for (int i = 0; i < 200000; ++i) {
    samples.push_back(rng.uniform(0.0, pi[0]) + rng.uniform(0.0, pi[1]) +
                      rng.uniform(0.0, pi[2]));
  }
  const EmpiricalCdf ecdf{std::move(samples)};
  const double ks = ecdf.ks_distance([&pi](double t) { return sum_uniform_cdf(pi, t); });
  EXPECT_LT(ks, ecdf.ks_critical_value(0.001));
}

// ---------- Lemma 2.5: the density (Rota's research problem) -------------------

TEST(SumUniformPdf, SingleVariable) {
  const auto pi = rvec({Rational(1, 2)});
  // Density of U[0, 1/2] is 2 on the support.
  EXPECT_EQ(sum_uniform_pdf(pi, Rational(1, 4)), Rational{2});
  EXPECT_EQ(sum_uniform_pdf(pi, Rational{2}), Rational{0});
  EXPECT_EQ(sum_uniform_pdf(std::vector<Rational>{}, Rational(1, 2)), Rational{0});
}

TEST(SumUniformPdf, TriangularDensityForTwoEqualUniforms) {
  // Sum of two U[0,1]: triangular density peaking at 1 with value 1.
  const auto pi = rvec({Rational{1}, Rational{1}});
  EXPECT_EQ(sum_uniform_pdf(pi, Rational(1, 2)), Rational(1, 2));
  EXPECT_EQ(sum_uniform_pdf(pi, Rational{1}), Rational{1});
  EXPECT_EQ(sum_uniform_pdf(pi, Rational(3, 2)), Rational(1, 2));
  EXPECT_EQ(sum_uniform_pdf(pi, Rational{3}), Rational{0});
}

TEST(SumUniformPdf, IsDerivativeOfCdfNumerically) {
  const std::vector<double> pi{0.6, 0.9, 0.4};
  const double h = 1e-6;
  for (const double t : {0.3, 0.7, 1.1, 1.5, 1.8}) {
    const double numeric =
        (sum_uniform_cdf(pi, t + h) - sum_uniform_cdf(pi, t - h)) / (2.0 * h);
    EXPECT_NEAR(sum_uniform_pdf(pi, t), numeric, 1e-5) << t;
  }
}

TEST(SumUniformPdf, IntegratesToOne) {
  // Exact check: integrate the piecewise-polynomial density by evaluating the
  // CDF at the top of the support.
  const auto pi = rvec({Rational(1, 2), Rational(1, 3), Rational(3, 4)});
  const Rational top = Rational(1, 2) + Rational(1, 3) + Rational(3, 4);
  EXPECT_EQ(sum_uniform_cdf(pi, top), Rational{1});
}

// ---------- Lemma 2.7: shifted uniforms ----------------------------------------

TEST(SumShiftedUniformCdf, SingleVariable) {
  // x ~ U[1/2, 1]: P(x <= 3/4) = 1/2.
  const auto pi = rvec({Rational(1, 2)});
  EXPECT_EQ(sum_shifted_uniform_cdf(pi, Rational(3, 4)), Rational(1, 2));
  EXPECT_EQ(sum_shifted_uniform_cdf(pi, Rational(1, 4)), Rational{0});
  EXPECT_EQ(sum_shifted_uniform_cdf(pi, Rational{2}), Rational{1});
}

TEST(SumShiftedUniformCdf, ZeroShiftReducesToIrwinHall) {
  for (std::uint32_t m = 1; m <= 6; ++m) {
    const std::vector<Rational> pi(m, Rational{0});
    for (int i = 0; i <= 12; ++i) {
      const Rational t{i, 3};
      EXPECT_EQ(sum_shifted_uniform_cdf(pi, t), irwin_hall_cdf(m, t)) << m << " " << t;
    }
  }
}

TEST(SumShiftedUniformCdf, ShiftRelationForEqualShifts) {
  // If all shifts equal β, Σ x_i =(d) mβ + (1−β) Σ u_i with u_i ~ U[0,1]:
  // F(t) = IH_m((t − mβ)/(1−β)).
  const Rational beta(2, 5);
  for (std::uint32_t m = 1; m <= 5; ++m) {
    const std::vector<Rational> pi(m, beta);
    for (int i = 0; i <= 15; ++i) {
      const Rational t{i, 3};
      const Rational rescaled =
          (t - Rational{static_cast<std::int64_t>(m)} * beta) / (Rational{1} - beta);
      EXPECT_EQ(sum_shifted_uniform_cdf(pi, t), irwin_hall_cdf(m, rescaled))
          << "m=" << m << " t=" << t;
    }
  }
}

TEST(SumShiftedUniformCdf, RejectsOutOfRangeShifts) {
  EXPECT_THROW((void)sum_shifted_uniform_cdf(rvec({Rational{1}}), Rational{1}),
               std::invalid_argument);
  EXPECT_THROW((void)sum_shifted_uniform_cdf(rvec({Rational{-1, 2}}), Rational{1}),
               std::invalid_argument);
}

TEST(SumShiftedUniformCdf, AgainstSampling) {
  const std::vector<double> pi{0.2, 0.5, 0.7};
  Rng rng{123};
  std::vector<double> samples;
  samples.reserve(200000);
  for (int i = 0; i < 200000; ++i) {
    samples.push_back(rng.uniform(pi[0], 1.0) + rng.uniform(pi[1], 1.0) +
                      rng.uniform(pi[2], 1.0));
  }
  const EmpiricalCdf ecdf{std::move(samples)};
  const double ks = ecdf.ks_distance([&pi](double t) { return sum_shifted_uniform_cdf(pi, t); });
  EXPECT_LT(ks, ecdf.ks_critical_value(0.001));
}

TEST(SumShiftedUniformCdf, MonotoneAndBounded) {
  const auto pi = rvec({Rational(1, 4), Rational(1, 2), Rational(1, 8)});
  Rational previous{-1};
  for (int i = 0; i <= 30; ++i) {
    const Rational t{i, 10};
    const Rational f = sum_shifted_uniform_cdf(pi, t);
    EXPECT_GE(f, previous);
    EXPECT_GE(f, Rational{0});
    EXPECT_LE(f, Rational{1});
    previous = f;
  }
}

// ---------- double/exact agreement for the general lemmas ----------------------

TEST(UniformSums, DoubleMatchesExactHeterogeneous) {
  const auto pi = rvec({Rational(1, 2), Rational(2, 3), Rational(3, 4), Rational{1}});
  std::vector<double> pi_d;
  for (const Rational& p : pi) pi_d.push_back(p.to_double());
  for (int i = 0; i <= 15; ++i) {
    const Rational t{i, 5};
    EXPECT_NEAR(sum_uniform_cdf(pi_d, t.to_double()), sum_uniform_cdf(pi, t).to_double(),
                1e-12);
    EXPECT_NEAR(sum_uniform_pdf(pi_d, t.to_double()), sum_uniform_pdf(pi, t).to_double(),
                1e-12);
  }
  const auto shifts = rvec({Rational(1, 5), Rational(2, 5), Rational(3, 5)});
  std::vector<double> shifts_d;
  for (const Rational& p : shifts) shifts_d.push_back(p.to_double());
  for (int i = 0; i <= 15; ++i) {
    const Rational t{i, 5};
    EXPECT_NEAR(sum_shifted_uniform_cdf(shifts_d, t.to_double()),
                sum_shifted_uniform_cdf(shifts, t).to_double(), 1e-12);
  }
}

}  // namespace
}  // namespace ddm::prob
