// Tests for the bench-harness table renderer.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ddm::util {
namespace {

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(Table, RejectsMismatchedRow) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  Table t{{"n", "value"}};
  t.add_row({"3", "0.545"});
  t.add_row({"10", "0.1"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("| n  | value |"), std::string::npos);
  EXPECT_NE(out.find("| 3  | 0.545 |"), std::string::npos);
  EXPECT_NE(out.find("| 10 | 0.1   |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t{{"x", "y"}};
  t.add_row({"1", "2"});
  t.add_row({"a,b", "he said \"hi\""});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "x,y\n1,2\n\"a,b\",\"he said \"\"hi\"\"\"\n");
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(0.5), "0.500000");
  EXPECT_EQ(fmt(0.12345678, 3), "0.123");
  EXPECT_EQ(fmt(-1.0, 2), "-1.00");
}

}  // namespace
}  // namespace ddm::util
