// Golden regression pins: exact rational values produced by the verified
// engines (cross-checked against the paper, Monte Carlo, and independent
// evaluators elsewhere in this suite). Any future refactor that changes one
// of these values is a bug — exact arithmetic has no tolerance.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/metrics.hpp"
#include "core/nonoblivious.hpp"
#include "core/oblivious.hpp"

namespace ddm {
namespace {

using util::Rational;

struct GoldenEntry {
  std::uint32_t n;
  int key;
  const char* value;
};

TEST(Golden, SymmetricThresholdWinningProbabilities) {
  // key = beta numerator over 8; capacity t = n/3.
  static constexpr GoldenEntry kGolden[] = {
      {2u, 0, "2/9"},
      {2u, 1, "137/576"},
      {2u, 2, "41/144"},
      {2u, 3, "205/576"},
      {2u, 4, "13/36"},
      {2u, 5, "157/576"},
      {2u, 6, "2/9"},
      {2u, 7, "2/9"},
      {2u, 8, "2/9"},
      {3u, 0, "1/6"},
      {3u, 1, "581/3072"},
      {3u, 2, "97/384"},
      {3u, 3, "1079/3072"},
      {3u, 4, "23/48"},
      {3u, 5, "1673/3072"},
      {3u, 6, "187/384"},
      {3u, 7, "1067/3072"},
      {3u, 8, "1/6"},
      {4u, 0, "7/54"},
      {4u, 1, "150611/995328"},
      {4u, 2, "13187/62208"},
      {4u, 3, "296005/995328"},
      {4u, 4, "1001/2592"},
      {4u, 5, "281585/663552"},
      {4u, 6, "209/512"},
      {4u, 7, "65867/221184"},
      {4u, 8, "7/54"},
      {5u, 0, "593/5832"},
      {5u, 1, "23532913/191102976"},
      {5u, 2, "1098937/5971968"},
      {5u, 3, "54123431/191102976"},
      {5u, 4, "79879/186624"},
      {5u, 5, "97946875/191102976"},
      {5u, 6, "2324473/5971968"},
      {5u, 7, "48584641/191102976"},
      {5u, 8, "593/5832"},
      {6u, 0, "29/360"},
      {6u, 1, "9546551/94371840"},
      {6u, 2, "118873/737280"},
      {6u, 3, "12337931/47185920"},
      {6u, 4, "9073/23040"},
      {6u, 5, "50768269/94371840"},
      {6u, 6, "779711/1474560"},
      {6u, 7, "29222783/94371840"},
      {6u, 8, "29/360"},
  };
  for (const GoldenEntry& entry : kGolden) {
    EXPECT_EQ(core::symmetric_threshold_winning_probability(
                  entry.n, Rational{entry.key, 8},
                  Rational{static_cast<std::int64_t>(entry.n), 3}),
              Rational::parse(entry.value))
        << "n=" << entry.n << " beta=" << entry.key << "/8";
  }
}

TEST(Golden, OptimalObliviousWinningProbabilities) {
  // key = 0 -> t = 1; key = 1 -> t = n/3.
  static constexpr GoldenEntry kGolden[] = {
      {2u, 0, "3/4"},
      {2u, 1, "1/3"},
      {3u, 0, "5/12"},
      {3u, 1, "5/12"},
      {4u, 0, "35/192"},
      {4u, 1, "559/1296"},
      {5u, 0, "21/320"},
      {5u, 1, "10837/23328"},
      {6u, 0, "77/3840"},
      {6u, 1, "127/256"},
      {7u, 0, "143/26880"},
      {7u, 1, "1460899/2799360"},
      {8u, 0, "143/114688"},
      {8u, 1, "7354273/13436928"},
      {9u, 0, "2431/9289728"},
      {9u, 1, "18397/32256"},
      {10u, 0, "46189/928972800"},
      {10u, 1, "2164348054207/3656994324480"},
  };
  for (const GoldenEntry& entry : kGolden) {
    const Rational t = entry.key == 0
                           ? Rational{1}
                           : Rational{static_cast<std::int64_t>(entry.n), 3};
    EXPECT_EQ(core::optimal_oblivious_winning_probability(entry.n, t),
              Rational::parse(entry.value))
        << "n=" << entry.n << " key=" << entry.key;
  }
}

TEST(Golden, ExpectedOverflowValues) {
  // key = beta numerator over 8; capacity t = n/3.
  static constexpr GoldenEntry kGolden[] = {
      {2u, 2, "1849/5184"},
      {2u, 3, "13207/41472"},
      {2u, 4, "175/648"},
      {2u, 5, "9841/41472"},
      {2u, 6, "79/324"},
      {2u, 7, "379/1296"},
      {3u, 2, "3013/6144"},
      {3u, 3, "41989/98304"},
      {3u, 4, "133/384"},
      {3u, 5, "26293/98304"},
      {3u, 6, "1477/6144"},
      {3u, 7, "31141/98304"},
      {4u, 2, "4635991/7464960"},
      {4u, 3, "125401801/238878720"},
      {4u, 4, "13/32"},
      {4u, 5, "2001709/6635520"},
      {4u, 6, "42319/155520"},
      {4u, 7, "7674041/19906560"},
      {5u, 2, "323028569/429981696"},
      {5u, 3, "17144889401/27518828544"},
      {5u, 4, "3117817/6718464"},
      {5u, 5, "2814917665/9172942848"},
      {5u, 6, "36998617/143327232"},
      {5u, 7, "11915157691/27518828544"},
  };
  for (const GoldenEntry& entry : kGolden) {
    EXPECT_EQ(core::expected_overflow_symmetric_threshold(
                  entry.n, Rational{entry.key, 8},
                  Rational{static_cast<std::int64_t>(entry.n), 3}),
              Rational::parse(entry.value))
        << "n=" << entry.n << " beta=" << entry.key << "/8";
  }
}

}  // namespace
}  // namespace ddm
