// Tests for exact Lagrange interpolation and its use as a derivation-
// independent check of the Section 5.2 symbolic pipeline.
#include "poly/interpolate.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/nonoblivious.hpp"
#include "core/symmetric_threshold.hpp"

namespace ddm::poly {
namespace {

using util::Rational;

std::pair<Rational, Rational> pt(std::int64_t xn, std::int64_t xd, std::int64_t yn,
                                 std::int64_t yd) {
  return {Rational{xn, xd}, Rational{yn, yd}};
}

TEST(Lagrange, ConstantThroughOnePoint) {
  const std::vector<std::pair<Rational, Rational>> points{pt(3, 1, 7, 2)};
  EXPECT_EQ(lagrange_interpolate(points), QPoly{Rational(7, 2)});
}

TEST(Lagrange, LineThroughTwoPoints) {
  // Through (0, 1) and (2, 5): y = 2x + 1.
  const std::vector<std::pair<Rational, Rational>> points{pt(0, 1, 1, 1), pt(2, 1, 5, 1)};
  EXPECT_EQ(lagrange_interpolate(points),
            (QPoly{std::vector<Rational>{Rational{1}, Rational{2}}}));
}

TEST(Lagrange, RecoversCubicExactly) {
  const QPoly cubic{std::vector<Rational>{Rational(-11, 6), Rational{9}, Rational(-21, 2),
                                          Rational(7, 2)}};
  std::vector<std::pair<Rational, Rational>> points;
  for (int i = 0; i < 4; ++i) {
    const Rational x{i + 1, 7};
    points.emplace_back(x, cubic(x));
  }
  EXPECT_EQ(lagrange_interpolate(points), cubic);
}

TEST(Lagrange, ExtraPointsCollapseDegree) {
  // Interpolating a quadratic through 6 points still returns the quadratic.
  const QPoly quadratic{std::vector<Rational>{Rational(6, 7), Rational{-2}, Rational{1}}};
  std::vector<std::pair<Rational, Rational>> points;
  for (int i = 0; i < 6; ++i) {
    const Rational x{2 * i + 1, 9};
    points.emplace_back(x, quadratic(x));
  }
  const QPoly result = lagrange_interpolate(points);
  EXPECT_EQ(result, quadratic);
  EXPECT_EQ(result.degree(), 2);
}

TEST(Lagrange, DuplicateXThrows) {
  const std::vector<std::pair<Rational, Rational>> points{pt(1, 2, 0, 1), pt(1, 2, 1, 1)};
  EXPECT_THROW((void)lagrange_interpolate(points), std::invalid_argument);
  EXPECT_THROW((void)lagrange_interpolate({}), std::invalid_argument);
}

TEST(Lagrange, InterpolateOnHelper) {
  const QPoly target{std::vector<Rational>{Rational{2}, Rational{0}, Rational{-3}}};
  const QPoly rebuilt = interpolate_on(Rational{0}, Rational{1}, 5,
                                       [&target](const Rational& x) { return target(x); });
  EXPECT_EQ(rebuilt, target);
}

TEST(Lagrange, ReconstructsSection521PiecesFromNumericEvaluator) {
  // Derivation-independent check of the symbolic pipeline: sample the NUMERIC
  // Theorem 5.1 evaluator inside each breakpoint interval and interpolate;
  // the result must equal the symbolic piece exactly.
  const auto analysis = core::SymmetricThresholdAnalysis::build(3, Rational{1});
  for (const Piece& piece : analysis.winning_probability().pieces()) {
    const QPoly rebuilt =
        interpolate_on(piece.lo, piece.hi, 5, [](const Rational& beta) {
          return core::symmetric_threshold_winning_probability(3, beta, Rational{1});
        });
    EXPECT_EQ(rebuilt, piece.poly)
        << "piece [" << piece.lo << ", " << piece.hi << "]";
  }
}

TEST(Lagrange, ReconstructsSection522PiecesFromNumericEvaluator) {
  const auto analysis = core::SymmetricThresholdAnalysis::build(4, Rational(4, 3));
  for (const Piece& piece : analysis.winning_probability().pieces()) {
    const QPoly rebuilt =
        interpolate_on(piece.lo, piece.hi, 6, [](const Rational& beta) {
          return core::symmetric_threshold_winning_probability(4, beta, Rational(4, 3));
        });
    EXPECT_EQ(rebuilt, piece.poly)
        << "piece [" << piece.lo << ", " << piece.hi << "]";
  }
}

}  // namespace
}  // namespace ddm::poly
