// SIMD layer tests (util/simd.hpp): strict DDM_SIMD parsing, runtime
// dispatch clamping, and — the heart of the vectorization contract — the
// lane-width parity matrix: every compiled pack width must produce BITWISE
// identical results to the scalar kernels, on the batch subset walk
// (core/batch_walk.hpp) and the vector Horner grid evaluator
// (poly/compiled_detail.hpp), across golden n = 2..6 grids and the n = 12,
// t = 4 CLI acceptance instance. The matrix is re-run under pinned
// DDM_THREADS=1/4 by ctest (simd_parity_threads_*, tests/CMakeLists.txt)
// and under ASan/UBSan by scripts/run_sanitizers.sh, whose ragged tail
// counts would flag any lane over-read at a grid tail.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/nonoblivious.hpp"
#include "core/symmetric_threshold.hpp"
#include "obs/metrics_registry.hpp"
#include "poly/compiled.hpp"
#include "prob/rng.hpp"
#include "util/rational.hpp"
#include "util/simd.hpp"
#include "util/status.hpp"

namespace ddm {
namespace {

using poly::CompiledPiecewise;
using util::Rational;
using util::simd::ScopedForceWidth;
using util::simd::SimdMode;

// Widths to run the parity matrix over: always 1, plus every pack width the
// binary compiled AND this host can execute. ScopedForceWidth clamps to
// native anyway; filtering keeps each matrix cell honest about what it runs.
std::vector<int> available_widths() {
  std::vector<int> widths{1};
  for (const int w : {2, 4, 8}) {
    if (w <= util::simd::native_width()) widths.push_back(w);
  }
  return widths;
}

// --- DDM_SIMD parsing ----------------------------------------------------

TEST(SimdParse, AcceptsExactlyTheFiveModes) {
  EXPECT_EQ(util::simd::parse_simd_mode("DDM_SIMD", "off"), SimdMode::kOff);
  EXPECT_EQ(util::simd::parse_simd_mode("DDM_SIMD", "scalar"), SimdMode::kScalar);
  EXPECT_EQ(util::simd::parse_simd_mode("DDM_SIMD", "native"), SimdMode::kNative);
  EXPECT_EQ(util::simd::parse_simd_mode("DDM_SIMD", "avx2"), SimdMode::kAvx2);
  EXPECT_EQ(util::simd::parse_simd_mode("DDM_SIMD", "neon"), SimdMode::kNeon);
}

TEST(SimdParse, RejectsGarbageNamingTheVariableAndValue) {
  for (const char* bad : {"", "bogus", "OFF", "avx512", " native", "native ", "2"}) {
    try {
      (void)util::simd::parse_simd_mode("DDM_SIMD", bad);
      FAIL() << "accepted '" << bad << "'";
    } catch (const Error& err) {
      const std::string what = err.what();
      EXPECT_NE(what.find("DDM_SIMD"), std::string::npos) << what;
      EXPECT_NE(what.find(std::string("'") + bad + "'"), std::string::npos) << what;
    }
  }
}

// --- runtime dispatch ----------------------------------------------------

// setenv/unsetenv around each test; the cache reset makes dispatch_width()
// actually re-read the variable.
class SimdDispatch : public ::testing::Test {
 protected:
  void SetUp() override {
    if (const char* prev = std::getenv("DDM_SIMD")) {
      had_previous_ = true;
      previous_ = prev;
    }
    util::simd::reset_dispatch_cache_for_testing();
  }
  void TearDown() override {
    if (had_previous_) {
      ::setenv("DDM_SIMD", previous_.c_str(), 1);
    } else {
      ::unsetenv("DDM_SIMD");
    }
    util::simd::reset_dispatch_cache_for_testing();
  }

  static void set_mode(const char* value) {
    ::setenv("DDM_SIMD", value, 1);
    util::simd::reset_dispatch_cache_for_testing();
  }

 private:
  bool had_previous_ = false;
  std::string previous_;
};

TEST_F(SimdDispatch, NativeWidthIsAValidPackWidth) {
  const int native = util::simd::native_width();
  EXPECT_TRUE(native == 1 || native == 2 || native == 4 || native == 8) << native;
#if defined(DDM_SIMD_COMPILED_AVX2)
  // The binary has 4-wide kernels; this x86-64 host may still lack AVX2,
  // but the baseline SSE2 pack is always executable.
  EXPECT_GE(native, 2);
#endif
}

TEST_F(SimdDispatch, UnsetMeansNative) {
  ::unsetenv("DDM_SIMD");
  util::simd::reset_dispatch_cache_for_testing();
  EXPECT_EQ(util::simd::dispatch_width(), util::simd::native_width());
}

TEST_F(SimdDispatch, OffAndScalarForceWidthOne) {
  set_mode("off");
  EXPECT_EQ(util::simd::dispatch_width(), 1);
  set_mode("scalar");
  EXPECT_EQ(util::simd::dispatch_width(), 1);
}

TEST_F(SimdDispatch, IsaRequestsClampToNative) {
  const int native = util::simd::native_width();
  set_mode("native");
  EXPECT_EQ(util::simd::dispatch_width(), native);
  set_mode("avx2");
  EXPECT_EQ(util::simd::dispatch_width(), std::min(4, native));
  set_mode("neon");
  EXPECT_EQ(util::simd::dispatch_width(), std::min(2, native));
}

TEST_F(SimdDispatch, MalformedValueThrowsOnEveryCall) {
  // The parse failure must not latch: both calls throw (the CLI surfaces
  // this as exit 2), and the message names the variable.
  set_mode("bogus");
  EXPECT_THROW((void)util::simd::dispatch_width(), Error);
  EXPECT_THROW((void)util::simd::dispatch_width(), Error);
}

TEST_F(SimdDispatch, ScopedForceWidthOverridesEnvAndRestores) {
  set_mode("off");
  const int native = util::simd::native_width();
  {
    ScopedForceWidth force{native};
    EXPECT_EQ(util::simd::dispatch_width(), native);
    // Requests beyond native clamp instead of dispatching uncompiled code.
    ScopedForceWidth wild{64};
    EXPECT_EQ(util::simd::dispatch_width(), native);
  }
  EXPECT_EQ(util::simd::dispatch_width(), 1);
}

// --- lane-width parity: batch subset walk --------------------------------

// Golden grids: symmetric sweep points plus asymmetric corners, with point
// counts chosen to leave ragged vector tails (29 = 16 + 13 splits into one
// full block and one block whose count is no multiple of any pack width).
std::vector<std::vector<double>> golden_points(std::uint32_t n, std::size_t count,
                                               prob::Rng& rng) {
  std::vector<std::vector<double>> points;
  for (std::size_t k = 0; k < count; ++k) {
    if (k % 4 == 3) {
      std::vector<double> p(n);
      for (double& v : p) v = rng.uniform();
      points.push_back(std::move(p));
    } else {
      points.push_back(std::vector<double>(
          n, static_cast<double>(k) / static_cast<double>(count > 1 ? count - 1 : 1)));
    }
  }
  return points;
}

void expect_batch_parity(const std::vector<std::vector<double>>& points, double t) {
  // Scalar serial evaluator = the ground truth every width must hit bitwise.
  std::vector<double> serial;
  serial.reserve(points.size());
  for (const auto& p : points) {
    serial.push_back(core::threshold_winning_probability(p, t));
  }
  for (const int width : available_widths()) {
    ScopedForceWidth force{width};
    const std::vector<double> batch = core::threshold_winning_probability_batch(points, t);
    ASSERT_EQ(batch.size(), points.size());
    for (std::size_t p = 0; p < points.size(); ++p) {
      EXPECT_EQ(batch[p], serial[p]) << "width=" << width << " point=" << p;
    }
  }
}

TEST(SimdParity, BatchWalkBitwiseAcrossWidthsOnGoldenGrids) {
  prob::Rng rng{4242};
  for (std::uint32_t n = 2; n <= 6; ++n) {
    expect_batch_parity(golden_points(n, 29, rng), static_cast<double>(n) / 3.0);
  }
}

TEST(SimdParity, BatchWalkRaggedTailCounts) {
  // 1, 5, and 17 points: a lone scalar tail, a sub-width run, and one full
  // batch block plus a single straggler. ASan/UBSan runs catch any lane
  // over-read past the end of the SoA accumulators here.
  prob::Rng rng{7};
  for (const std::size_t count : {std::size_t{1}, std::size_t{5}, std::size_t{17}}) {
    expect_batch_parity(golden_points(5, count, rng), 5.0 / 3.0);
  }
}

TEST(SimdParity, BatchWalkMixedPointSizesDegradeToScalarRuns) {
  // Interleaved sizes break every amortized run down to length 1, so the
  // vector path's tail handling carries the whole batch.
  prob::Rng rng{11};
  std::vector<std::vector<double>> points;
  for (std::size_t k = 0; k < 18; ++k) {
    std::vector<double> p(2 + k % 5);
    for (double& v : p) v = rng.uniform();
    points.push_back(std::move(p));
  }
  expect_batch_parity(points, 1.25);
}

TEST(SimdParity, BatchWalkAcceptanceInstance) {
  // The n = 12, t = 4 CLI acceptance instance
  // (`ddm_cli sweep 12 4 0 1 10000 --engine=batch`).
  prob::Rng rng{1999};
  expect_batch_parity(golden_points(12, 29, rng), 4.0);
}

// --- lane-width parity: compiled vector Horner ---------------------------

CompiledPiecewise lowered_plan(std::uint32_t n, const Rational& t) {
  const auto analysis = core::SymmetricThresholdAnalysis::build(n, t);
  return CompiledPiecewise::lower(analysis.winning_probability());
}

// Sorted sweep grid: a linspace whose size (steps + 1 + 2·pieces) is no
// multiple of any pack width, with every breakpoint inserted exactly so
// piece-run boundaries land mid-vector.
std::vector<double> sweep_grid(const CompiledPiecewise& plan, std::size_t steps) {
  std::vector<double> xs;
  const double lo = plan.domain_lo();
  const double hi = plan.domain_hi();
  for (std::size_t k = 0; k <= steps; ++k) {
    xs.push_back(lo + (hi - lo) * static_cast<double>(k) / static_cast<double>(steps));
  }
  for (const poly::CompiledPiece& piece : plan.pieces()) {
    xs.push_back(piece.lo);
    xs.push_back(piece.hi);
  }
  std::sort(xs.begin(), xs.end());
  return xs;
}

void expect_grid_parity(const CompiledPiecewise& plan, const std::vector<double>& xs) {
  for (const int width : available_widths()) {
    ScopedForceWidth force{width};
    const std::vector<double> grid = plan.eval_grid(xs);
    ASSERT_EQ(grid.size(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      EXPECT_EQ(grid[i], plan.eval(xs[i])) << "width=" << width << " x=" << xs[i];
    }
  }
}

TEST(SimdParity, EvalGridBitwiseAcrossWidthsOnGoldenInstances) {
  const struct {
    std::uint32_t n;
    Rational t;
  } cases[] = {{2, Rational{2, 3}}, {3, Rational{1}}, {4, Rational{4, 3}},
               {5, Rational{5, 3}}, {6, Rational{2}}, {12, Rational{4}}};
  for (const auto& c : cases) {
    const CompiledPiecewise plan = lowered_plan(c.n, c.t);
    expect_grid_parity(plan, sweep_grid(plan, 256));
  }
}

TEST(SimdParity, EvalGridRaggedTailCounts) {
  const CompiledPiecewise plan = lowered_plan(5, Rational{5, 3});
  const std::vector<double> full = sweep_grid(plan, 64);
  for (const std::size_t count : {std::size_t{1}, std::size_t{5}, std::size_t{17}}) {
    expect_grid_parity(plan, std::vector<double>(full.begin(),
                                                 full.begin() + static_cast<std::ptrdiff_t>(
                                                                    std::min(count, full.size()))));
  }
}

TEST(SimdParity, EvalGridUnsortedDuplicatedAndBreakpointExactInputs) {
  // Run detection must not ASSUME sorted input: a descending grid with
  // duplicates and exact breakpoints degrades to short runs but stays
  // bitwise equal to per-point eval (left piece wins at shared breaks).
  const CompiledPiecewise plan = lowered_plan(4, Rational{4, 3});
  std::vector<double> xs = sweep_grid(plan, 37);
  std::reverse(xs.begin(), xs.end());
  const std::size_t original = xs.size();
  for (std::size_t i = 0; i < original; i += 5) xs.push_back(xs[i]);
  expect_grid_parity(plan, xs);
}

TEST(SimdParity, EvalGridThrowsOutOfDomainAtEveryWidth) {
  const CompiledPiecewise plan = lowered_plan(3, Rational{1});
  for (const int width : available_widths()) {
    ScopedForceWidth force{width};
    const std::vector<double> outside{plan.domain_lo(), plan.domain_hi() + 1.0};
    EXPECT_THROW((void)plan.eval_grid(outside), std::out_of_range) << width;
    const std::vector<double> nan{std::numeric_limits<double>::quiet_NaN()};
    EXPECT_THROW((void)plan.eval_grid(nan), std::out_of_range) << width;
  }
}

// --- metrics honesty -----------------------------------------------------

class SimdMetrics : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::instance().reset();
    obs::set_metrics_enabled(true);
  }
  void TearDown() override {
    obs::set_metrics_enabled(false);
    obs::Registry::instance().reset();
  }

  static const obs::MetricSample* find(const std::vector<obs::MetricSample>& samples,
                                       std::string_view name) {
    for (const obs::MetricSample& sample : samples) {
      if (sample.name == name) return &sample;
    }
    return nullptr;
  }
};

TEST_F(SimdMetrics, GaugeReportsDispatchedWidthNotCompiledWidth) {
  prob::Rng rng{3};
  const auto points = golden_points(5, 29, rng);
  for (const int width : available_widths()) {
    obs::Registry::instance().reset();
    ScopedForceWidth force{width};
    (void)core::threshold_winning_probability_batch(points, 5.0 / 3.0);
    const auto samples = obs::Registry::instance().scrape();
    const obs::MetricSample* gauge = find(samples, "engine.simd_width");
    ASSERT_NE(gauge, nullptr) << width;
    EXPECT_EQ(gauge->kind, obs::MetricSample::Kind::kGauge);
    EXPECT_EQ(gauge->gauge_value, width);
    const obs::MetricSample* lanes = find(samples, "kernel.vector_lanes");
    ASSERT_NE(lanes, nullptr) << width;
    if (width == 1) {
      EXPECT_EQ(lanes->counter_value, 0u);
    } else {
      // 29 points split 16 + 13; full-width lanes per block: count − count%W.
      const auto w = static_cast<std::uint64_t>(width);
      EXPECT_EQ(lanes->counter_value, (16 - 16 % w) + (13 - 13 % w));
    }
  }
}

TEST_F(SimdMetrics, CompiledEvalGridReportsDispatchedWidth) {
  const CompiledPiecewise plan = lowered_plan(3, Rational{1});
  const std::vector<double> xs = sweep_grid(plan, 64);
  for (const int width : available_widths()) {
    obs::Registry::instance().reset();
    ScopedForceWidth force{width};
    (void)plan.eval_grid(xs);
    const auto samples = obs::Registry::instance().scrape();
    const obs::MetricSample* gauge = find(samples, "engine.simd_width");
    ASSERT_NE(gauge, nullptr) << width;
    EXPECT_EQ(gauge->gauge_value, width);
  }
}

}  // namespace
}  // namespace ddm
