// Tests for the crash-safe sweep checkpoint (util/checkpoint.hpp): fresh
// write + reload, lossless double round-trips, torn-trailing-line discard
// (the crash-mid-append case), mid-file corruption and header-mismatch
// rejection, and append durability. Files live under the gtest temp dir.
#include "util/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/metrics_registry.hpp"
#include "util/status.hpp"

namespace ddm::util {
namespace {

SweepParams test_params() {
  SweepParams params;
  params.n = 4;
  params.t = "4/3";
  params.beta_lo = "0";
  params.beta_hi = "1";
  params.steps = 8;
  params.engine = "auto";
  params.resolved = "batch";
  return params;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "ddm_checkpoint_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".jsonl";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string read_file() const {
    std::ifstream in(path_);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  void append_raw(const std::string& text) const {
    std::ofstream out(path_, std::ios::out | std::ios::app);
    out << text;
  }

  std::string path_;
};

TEST_F(CheckpointTest, FreshFileWritesHeaderAndRowsRoundTrip) {
  const SweepParams params = test_params();
  {
    SweepCheckpoint checkpoint(path_, params, /*resume=*/false);
    EXPECT_TRUE(checkpoint.completed().empty());
    checkpoint.append({0, 0.0, 0.5});
    // Doubles with no short decimal form must round-trip bit-exactly.
    checkpoint.append({3, 0.375, 0.5445963541666666});
    EXPECT_TRUE(checkpoint.has(3));
    EXPECT_FALSE(checkpoint.has(1));
  }
  SweepCheckpoint resumed(path_, params, /*resume=*/true);
  ASSERT_EQ(resumed.completed().size(), 2u);
  EXPECT_EQ(resumed.completed().at(0).beta, 0.0);
  EXPECT_EQ(resumed.completed().at(0).p_win, 0.5);
  EXPECT_EQ(resumed.completed().at(3).beta, 0.375);
  EXPECT_EQ(resumed.completed().at(3).p_win, 0.5445963541666666);
}

TEST_F(CheckpointTest, TornTrailingLineIsDiscardedOnResume) {
  const SweepParams params = test_params();
  {
    SweepCheckpoint checkpoint(path_, params, false);
    checkpoint.append({0, 0.0, 0.25});
    checkpoint.append({1, 0.125, 0.375});
  }
  append_raw("{\"k\": 2, \"beta\":");  // crash mid-append: no newline, no value
  SweepCheckpoint resumed(path_, params, true);
  EXPECT_EQ(resumed.completed().size(), 2u);
  EXPECT_FALSE(resumed.has(2));
  // The recomputed row appends after the torn fragment's line; the file must
  // stay loadable afterwards with all three rows intact.
  resumed.append({2, 0.25, 0.5});
  SweepCheckpoint reloaded(path_, params, true);
  EXPECT_EQ(reloaded.completed().size(), 3u);
  EXPECT_EQ(reloaded.completed().at(2).p_win, 0.5);
}

TEST_F(CheckpointTest, CompleteRecordMissingOnlyFinalNewlineIsTornAndTruncated) {
  const SweepParams params = test_params();
  {
    SweepCheckpoint checkpoint(path_, params, false);
    checkpoint.append({0, 0.0, 0.25});
  }
  // Crash after a record's bytes but before its newline: the text parses as
  // a complete row, but only newline-terminated lines are durable. Keeping
  // it would leave nothing to truncate, and the next append would glue onto
  // this line — corrupting the file for the resume after that.
  append_raw("{\"k\": 1, \"beta\": 0.125, \"p_win\": 0.375}");
  {
    SweepCheckpoint resumed(path_, params, true);
    EXPECT_EQ(resumed.completed().size(), 1u);
    EXPECT_FALSE(resumed.has(1));
    resumed.append({1, 0.125, 0.375});
  }
  const std::string contents = read_file();
  EXPECT_EQ(contents.find("}{"), std::string::npos) << "rows glued onto one line:\n" << contents;
  SweepCheckpoint reloaded(path_, params, true);
  ASSERT_EQ(reloaded.completed().size(), 2u);
  EXPECT_EQ(reloaded.completed().at(1).p_win, 0.375);
}

TEST_F(CheckpointTest, UnterminatedHeaderIsAnError) {
  append_raw("{\"sweep\": {\"n\": 4, \"t\": \"4/3\", \"beta_lo\": \"0\", \"beta_hi\": \"1\", "
             "\"steps\": 8}}");  // crash before the header's newline
  EXPECT_THROW(SweepCheckpoint(path_, test_params(), /*resume=*/true), CheckpointError);
}

TEST_F(CheckpointTest, MidFileCorruptionIsAnError) {
  const SweepParams params = test_params();
  {
    SweepCheckpoint checkpoint(path_, params, false);
    checkpoint.append({0, 0.0, 0.25});
  }
  append_raw("garbage line\n");
  append_raw("{\"k\": 1, \"beta\": 0.125, \"p_win\": 0.375}\n");
  try {
    SweepCheckpoint resumed(path_, params, true);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_NE(std::string(error.what()).find("corrupt"), std::string::npos);
  }
}

/// Resumes `path_` with `params` and returns the rejection message, failing
/// the test if the resume is accepted.
std::string expect_mismatch(const std::string& path, const SweepParams& params) {
  try {
    SweepCheckpoint resumed(path, params, /*resume=*/true);
  } catch (const CheckpointError& error) {
    return error.what();
  }
  ADD_FAILURE() << "expected CheckpointError";
  return {};
}

TEST_F(CheckpointTest, HeaderMismatchNamesTheField) {
  {
    SweepCheckpoint checkpoint(path_, test_params(), false);
    checkpoint.append({0, 0.0, 0.25});
  }
  // Every divergent field must be rejected, and the FIRST mismatching field
  // must be named with both values — "different sweep" alone does not tell
  // the operator which knob to fix.
  SweepParams other = test_params();
  other.n = 5;
  std::string what = expect_mismatch(path_, other);
  EXPECT_NE(what.find("different sweep"), std::string::npos) << what;
  EXPECT_NE(what.find("field 'n': checkpoint 4 vs requested 5"), std::string::npos) << what;

  other = test_params();
  other.steps = 9;
  what = expect_mismatch(path_, other);
  EXPECT_NE(what.find("field 'steps': checkpoint 8 vs requested 9"), std::string::npos) << what;

  other = test_params();
  other.t = "3/2";
  what = expect_mismatch(path_, other);
  EXPECT_NE(what.find("field 't': checkpoint 4/3 vs requested 3/2"), std::string::npos) << what;

  other = test_params();
  other.engine = "mc";
  what = expect_mismatch(path_, other);
  EXPECT_NE(what.find("field 'engine': checkpoint auto vs requested mc"), std::string::npos)
      << what;

  other = test_params();
  other.resolved = "kernel";
  what = expect_mismatch(path_, other);
  EXPECT_NE(what.find("field 'resolved': checkpoint batch vs requested kernel"),
            std::string::npos)
      << what;

  other = test_params();
  other.shard_index = 1;
  other.shard_count = 3;
  what = expect_mismatch(path_, other);
  EXPECT_NE(what.find("field 'shard': checkpoint 0/1 vs requested 1/3"), std::string::npos)
      << what;
}

TEST_F(CheckpointTest, PreEngineHeaderIsRejectedNamingTheAbsentField) {
  // A header written before the engine/resolved/shard fields existed parses
  // (lenient reader), but rows from an unknown engine must never be glued
  // onto a typed sweep: the resume names the absent field.
  append_raw("{\"sweep\": {\"n\": 4, \"t\": \"4/3\", \"beta_lo\": \"0\", \"beta_hi\": \"1\", "
             "\"steps\": 8}}\n");
  append_raw("{\"k\": 0, \"beta\": 0, \"p_win\": 0.25}\n");
  const std::string what = expect_mismatch(path_, test_params());
  EXPECT_NE(what.find("field 'engine': checkpoint <absent> vs requested auto"),
            std::string::npos)
      << what;
}

TEST_F(CheckpointTest, ShardedHeaderRoundTripsAndOwnsItsRows) {
  SweepParams params = test_params();
  params.shard_index = 1;
  params.shard_count = 3;
  {
    SweepCheckpoint checkpoint(path_, params, false);
    checkpoint.append({1, 0.125, 0.375});
    checkpoint.append({4, 0.5, 0.625});
    checkpoint.append({7, 0.875, 0.5});
  }
  const std::string contents = read_file();
  EXPECT_NE(contents.find("\"shard\": \"1/3\""), std::string::npos) << contents;
  SweepCheckpoint resumed(path_, params, true);
  EXPECT_EQ(resumed.completed().size(), 3u);
}

TEST_F(CheckpointTest, RowOutsideTheShardIsAnError) {
  SweepParams params = test_params();
  params.shard_index = 1;
  params.shard_count = 3;
  {
    SweepCheckpoint checkpoint(path_, params, false);
    checkpoint.append({1, 0.125, 0.375});
  }
  // k = 2 belongs to shard 2/3; its presence in a 1/3 file means two sweeps'
  // outputs were mixed — corruption, not a resumable state.
  append_raw("{\"k\": 2, \"beta\": 0.25, \"p_win\": 0.5}\n");
  append_raw("{\"k\": 4, \"beta\": 0.5, \"p_win\": 0.625}\n");
  try {
    SweepCheckpoint resumed(path_, params, true);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_NE(std::string(error.what()).find("outside shard"), std::string::npos)
        << error.what();
  }
}

TEST_F(CheckpointTest, ReadCheckpointLoadsWithoutWriting) {
  SweepParams params = test_params();
  params.shard_index = 2;
  params.shard_count = 3;
  {
    SweepCheckpoint checkpoint(path_, params, false);
    checkpoint.append({2, 0.25, 0.5});
    checkpoint.append({5, 0.625, 0.5445963541666666});
  }
  append_raw("{\"k\": 8, \"beta\":");  // torn tail
  const auto before = std::ifstream(path_, std::ios::ate | std::ios::binary).tellg();
  const LoadedCheckpoint loaded = read_checkpoint(path_);
  EXPECT_EQ(loaded.params, params);
  ASSERT_EQ(loaded.rows.size(), 2u);
  EXPECT_EQ(loaded.rows.at(5).p_win, 0.5445963541666666);
  EXPECT_TRUE(loaded.torn_tail);
  // Read-only: the torn fragment is reported, not truncated away.
  const auto after = std::ifstream(path_, std::ios::ate | std::ios::binary).tellg();
  EXPECT_EQ(before, after);
  EXPECT_THROW((void)read_checkpoint(path_ + ".missing"), CheckpointError);
}

TEST_F(CheckpointTest, ResumeRequiresAnExistingFileWithHeader) {
  EXPECT_THROW(SweepCheckpoint(path_, test_params(), /*resume=*/true), CheckpointError);
  append_raw("");  // create an empty file
  { std::ofstream out(path_); }
  EXPECT_THROW(SweepCheckpoint(path_, test_params(), true), CheckpointError);
}

TEST_F(CheckpointTest, RowIndexBeyondStepsIsAnError) {
  {
    SweepCheckpoint checkpoint(path_, test_params(), false);
    checkpoint.append({0, 0.0, 0.25});
  }
  append_raw("{\"k\": 99, \"beta\": 0.5, \"p_win\": 0.5}\n");
  append_raw("{\"k\": 1, \"beta\": 0.125, \"p_win\": 0.375}\n");  // keeps 99 off the last line
  EXPECT_THROW(SweepCheckpoint(path_, test_params(), true), CheckpointError);
}

TEST_F(CheckpointTest, AppendFlushesEachRowDurably) {
  const SweepParams params = test_params();
  SweepCheckpoint checkpoint(path_, params, false);
  checkpoint.append({0, 0.0, 0.25});
  // Without closing the writer, the row must already be on disk (flushed),
  // which is what bounds crash loss to the single in-flight row.
  const std::string contents = read_file();
  EXPECT_NE(contents.find("{\"k\": 0, \"beta\": 0, \"p_win\": 0.25}\n"), std::string::npos);
}

#if defined(__unix__) || defined(__APPLE__)
// Regression: append used to stop at std::flush, which only hands the bytes
// to the OS page cache — a HOST crash (power loss), as opposed to a killed
// process, could drop rows the sweep driver had already counted as durable,
// and the resume would silently skip recomputing them. Every append (and the
// header write) must now reach fsync; the checkpoint.fsyncs counter is the
// observable witness.
TEST_F(CheckpointTest, EveryAppendReachesFsync) {
  obs::set_metrics_enabled(true);
  obs::Registry::instance().reset();
  {
    SweepCheckpoint checkpoint(path_, test_params(), false);
    checkpoint.append({0, 0.0, 0.25});
    checkpoint.append({1, 0.125, 0.375});
  }
  std::uint64_t fsyncs = 0;
  for (const auto& sample : obs::Registry::instance().scrape()) {
    if (sample.name == "checkpoint.fsyncs") fsyncs = sample.counter_value;
  }
  obs::set_metrics_enabled(false);
  // One for the header, one per row.
  EXPECT_EQ(fsyncs, 3u);
}
#endif

}  // namespace
}  // namespace ddm::util
