// Tests for combinat subset iteration — the inclusion-exclusion driver.
#include "combinat/subsets.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "combinat/binomial.hpp"
#include "util/rational.hpp"

namespace ddm::combinat {
namespace {

TEST(SubsetMasks, CountsPowerSet) {
  int count = 0;
  for_each_subset_mask(5, [&count](std::uint64_t) { ++count; });
  EXPECT_EQ(count, 32);
}

TEST(SubsetMasks, EmptyGroundSet) {
  int count = 0;
  for_each_subset_mask(0, [&count](std::uint64_t mask) {
    ++count;
    EXPECT_EQ(mask, 0u);
  });
  EXPECT_EQ(count, 1);
}

TEST(SubsetMasks, RejectsOversizedGroundSet) {
  EXPECT_THROW(for_each_subset_mask(64, [](std::uint64_t) {}), std::invalid_argument);
}

TEST(KSubsets, CountsMatchBinomial) {
  for (std::uint32_t n = 0; n <= 8; ++n) {
    for (std::uint32_t k = 0; k <= n + 1; ++k) {
      int count = 0;
      for_each_k_subset(n, k, [&count](std::span<const std::uint32_t>) { ++count; });
      EXPECT_EQ(count, binomial(n, k).fits_int64() ? binomial(n, k).to_int64() : -1)
          << n << " choose " << k;
    }
  }
}

TEST(KSubsets, LexicographicAndDistinct) {
  std::set<std::vector<std::uint32_t>> seen;
  std::vector<std::uint32_t> previous;
  for_each_k_subset(6, 3, [&](std::span<const std::uint32_t> subset) {
    const std::vector<std::uint32_t> current(subset.begin(), subset.end());
    EXPECT_TRUE(seen.insert(current).second) << "duplicate subset";
    if (!previous.empty()) EXPECT_LT(previous, current) << "not lexicographic";
    previous = current;
    // strictly increasing indices within the subset
    for (std::size_t i = 1; i < current.size(); ++i) EXPECT_LT(current[i - 1], current[i]);
  });
  EXPECT_EQ(seen.size(), 20u);
}

TEST(KSubsets, ZeroKVisitsEmptySubsetOnce) {
  int count = 0;
  for_each_k_subset(4, 0, [&count](std::span<const std::uint32_t> subset) {
    ++count;
    EXPECT_TRUE(subset.empty());
  });
  EXPECT_EQ(count, 1);
}

TEST(Popcount, Basics) {
  EXPECT_EQ(popcount(0), 0u);
  EXPECT_EQ(popcount(0b1011), 3u);
  EXPECT_EQ(popcount(~std::uint64_t{0}), 64u);
}

TEST(InclusionExclusion, CountsDerangementsViaComplement) {
  // Number of permutations of 4 elements with no fixed point is 9;
  // inclusion-exclusion over "position i is fixed": Σ (-1)^|S| (4-|S|)!.
  const std::vector<int> positions{0, 1, 2, 3};
  const auto term = [](std::span<const int> fixed) -> double {
    double f = 1.0;
    for (int i = 1; i <= 4 - static_cast<int>(fixed.size()); ++i) f *= i;
    return f;
  };
  const double derangements = inclusion_exclusion<double, int>(positions, term);
  EXPECT_DOUBLE_EQ(derangements, 9.0);
}

TEST(InclusionExclusion, RationalField) {
  // Σ_{S ⊆ [3]} (-1)^{|S|} (1/2)^{|S|} = (1 - 1/2)^3 = 1/8.
  const std::vector<int> items{1, 2, 3};
  const auto term = [](std::span<const int> subset) {
    return util::Rational{1, 2}.pow(static_cast<std::int64_t>(subset.size()));
  };
  EXPECT_EQ((inclusion_exclusion<util::Rational, int>(items, term)), util::Rational(1, 8));
}

TEST(KSubsetSums, EnumeratesAllSums) {
  const std::vector<int> values{1, 2, 4, 8};
  std::multiset<int> sums;
  for_each_k_subset_sum<int>(values, 2, [&sums](const int& s) { sums.insert(s); });
  const std::multiset<int> expected{3, 5, 9, 6, 10, 12};
  EXPECT_EQ(sums, expected);
}

TEST(KSubsetSums, KZeroGivesZeroSumOnce) {
  const std::vector<int> values{1, 2, 3};
  int count = 0;
  for_each_k_subset_sum<int>(values, 0, [&count](const int& s) {
    ++count;
    EXPECT_EQ(s, 0);
  });
  EXPECT_EQ(count, 1);
}

TEST(KSubsetSums, KLargerThanNVisitsNothing) {
  const std::vector<int> values{1, 2};
  int count = 0;
  for_each_k_subset_sum<int>(values, 5, [&count](const int&) { ++count; });
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace ddm::combinat
