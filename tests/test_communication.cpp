// Tests for the communication-pattern extension (visibility model,
// PY'91 weighted-threshold protocols, common-random-number evaluation).
#include "core/communication.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/nonoblivious.hpp"
#include "core/symmetric_threshold.hpp"
#include "prob/rng.hpp"

namespace ddm::core {
namespace {

using util::Rational;

TEST(VisibilityPattern, NoneAndFull) {
  const auto none = VisibilityPattern::none(3);
  EXPECT_EQ(none.size(), 3u);
  EXPECT_EQ(none.edge_count(), 0u);
  EXPECT_EQ(none.view(1), (std::vector<std::size_t>{1}));

  const auto full = VisibilityPattern::full(3);
  EXPECT_EQ(full.edge_count(), 6u);
  EXPECT_EQ(full.view(2), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(VisibilityPattern, FromEdges) {
  const std::vector<std::pair<std::size_t, std::size_t>> edges{{0, 1}, {0, 2}, {0, 1}};
  const auto pattern = VisibilityPattern::from_edges(3, edges);
  EXPECT_EQ(pattern.view(0), (std::vector<std::size_t>{0}));
  EXPECT_EQ(pattern.view(1), (std::vector<std::size_t>{0, 1}));  // deduplicated
  EXPECT_EQ(pattern.view(2), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(pattern.edge_count(), 2u);
  EXPECT_THROW((void)VisibilityPattern::from_edges(
                   2, std::vector<std::pair<std::size_t, std::size_t>>{{0, 5}}),
               std::invalid_argument);
  EXPECT_THROW((void)VisibilityPattern::none(0), std::invalid_argument);
  EXPECT_THROW((void)pattern.view(7), std::out_of_range);
}

TEST(WeightedThreshold, DefaultIsSingleThreshold) {
  const WeightedThresholdProtocol protocol{VisibilityPattern::none(3)};
  // x_i <= 1/2 decides bin 0.
  EXPECT_EQ(protocol.decide(0, std::vector<double>{0.4, 0.9, 0.9}), 0);
  EXPECT_EQ(protocol.decide(0, std::vector<double>{0.6, 0.1, 0.1}), 1);
  EXPECT_EQ(protocol.decide(1, std::vector<double>{0.6, 0.1, 0.1}), 0);
}

TEST(WeightedThreshold, VisibilityEnforced) {
  WeightedThresholdProtocol protocol{VisibilityPattern::none(3)};
  EXPECT_THROW(protocol.set_weight(0, 1, 0.5), std::invalid_argument);
  EXPECT_NO_THROW(protocol.set_weight(0, 0, 0.5));
  // With an edge 1 -> 0, player 0 may weight x_1.
  const std::vector<std::pair<std::size_t, std::size_t>> edges{{1, 0}};
  WeightedThresholdProtocol with_edge{VisibilityPattern::from_edges(3, edges)};
  EXPECT_NO_THROW(with_edge.set_weight(0, 1, -0.5));
  EXPECT_THROW(with_edge.set_weight(1, 0, 0.5), std::invalid_argument);
}

TEST(WeightedThreshold, ParameterRoundTrip) {
  const std::vector<std::pair<std::size_t, std::size_t>> edges{{1, 0}, {2, 0}};
  WeightedThresholdProtocol protocol{VisibilityPattern::from_edges(3, edges)};
  std::vector<double> params = protocol.parameters();
  // views: P0 sees {0,1,2} (3 weights), P1 {1}, P2 {2} => 5 weights + 3 thetas.
  ASSERT_EQ(params.size(), 8u);
  for (std::size_t i = 0; i < params.size(); ++i) params[i] = 0.1 * static_cast<double>(i);
  protocol.set_parameters(params);
  EXPECT_EQ(protocol.parameters(), params);
  params.pop_back();
  EXPECT_THROW(protocol.set_parameters(params), std::invalid_argument);
  params.push_back(0.0);
  params.push_back(0.0);
  EXPECT_THROW(protocol.set_parameters(params), std::invalid_argument);
}

TEST(InputBank, DeterministicAndInRange) {
  prob::Rng rng{5150};
  const InputBank bank{3, 1000, rng};
  EXPECT_EQ(bank.players(), 3u);
  EXPECT_EQ(bank.samples(), 1000u);
  for (std::size_t s = 0; s < bank.samples(); ++s) {
    for (const double x : bank.sample(s)) {
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
  EXPECT_THROW((void)bank.sample(1000), std::out_of_range);
  prob::Rng rng2{5150};
  const InputBank bank2{3, 1000, rng2};
  EXPECT_EQ(bank.sample(7)[1], bank2.sample(7)[1]);
}

TEST(InputBank, WinningFractionMatchesExactForKnownProtocol) {
  // No communication, thresholds 0.622 — the bank fraction must approximate
  // the exact Theorem 5.1 value (bank of 200k samples → ~0.0011 sigma).
  WeightedThresholdProtocol protocol{VisibilityPattern::none(3)};
  for (std::size_t i = 0; i < 3; ++i) protocol.set_threshold(i, 0.622);
  prob::Rng rng{2717};
  const InputBank bank{3, 200000, rng};
  const double fraction = bank.winning_fraction(protocol, 1.0);
  const double exact =
      symmetric_threshold_winning_probability(3, Rational{622, 1000}, Rational{1}).to_double();
  EXPECT_NEAR(fraction, exact, 5.0 * 0.0011);
}

TEST(Optimizer, NoCommunicationRecoversPaperOptimum) {
  // Optimizing the weighted-threshold class under the empty pattern is the
  // paper's no-communication problem; the bank optimum must land near
  // P = 0.5446 (within bank noise + search granularity).
  prob::Rng rng{10101};
  const InputBank bank{3, 50000, rng};
  const auto result = optimize_weighted_threshold(
      WeightedThresholdProtocol{VisibilityPattern::none(3)}, 1.0, bank);
  EXPECT_NEAR(result.value, 0.5446, 0.01);
}

TEST(Optimizer, CommunicationNeverHurts) {
  // Adding visibility can only enlarge the protocol class: the optimized
  // one-edge pattern must do at least as well as the optimized empty one
  // (same bank, same budget).
  prob::Rng rng{20202};
  const InputBank bank{3, 50000, rng};
  const auto none = optimize_weighted_threshold(
      WeightedThresholdProtocol{VisibilityPattern::none(3)}, 1.0, bank);
  const std::vector<std::pair<std::size_t, std::size_t>> edges{{0, 1}};
  const auto one_edge = optimize_weighted_threshold(
      WeightedThresholdProtocol{VisibilityPattern::from_edges(3, edges)}, 1.0, bank);
  EXPECT_GE(one_edge.value, none.value - 0.002);  // small slack for search paths
}

TEST(Optimizer, Validation) {
  prob::Rng rng{1};
  const InputBank bank{2, 100, rng};
  EXPECT_THROW((void)optimize_weighted_threshold(
                   WeightedThresholdProtocol{VisibilityPattern::none(2)}, 1.0, bank, -1.0),
               std::invalid_argument);
  const WeightedThresholdProtocol three{VisibilityPattern::none(3)};
  EXPECT_THROW((void)bank.winning_fraction(three, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace ddm::core
