// Tests for certified evaluation (util/certify.hpp, core/certified.hpp,
// geom/volume.hpp): enclosures must contain the independently-computed exact
// value on instances small enough for the exact kernels, the escalation
// ladder must visibly climb double → interval on the ill-conditioned n = 24
// symmetric instance from the acceptance criteria, and the ladder plumbing
// (stats, max_tier capping, non-finite guards in the plain double kernels)
// must behave as documented in docs/robustness.md.
#include "core/certified.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/nonoblivious.hpp"
#include "core/symmetric_threshold.hpp"
#include "geom/volume.hpp"
#include "util/certify.hpp"
#include "util/rational.hpp"
#include "util/status.hpp"

namespace ddm {
namespace {

using util::Rational;

TEST(TrackedEnclosure, BoundsAreOutwardAndRejectNonFinite) {
  const util::TrackedDouble tracked{1.5, 0x1p-40};
  const util::RationalInterval enclosure = util::tracked_enclosure(tracked, "test");
  EXPECT_TRUE(enclosure.contains(Rational{3, 2}));
  EXPECT_TRUE(enclosure.width() > Rational{0});
  EXPECT_THROW((void)util::tracked_enclosure({std::numeric_limits<double>::infinity(), 0.0}, "t"),
               NumericError);
  EXPECT_THROW((void)util::tracked_enclosure({1.0, std::numeric_limits<double>::quiet_NaN()}, "t"),
               NumericError);
}

TEST(ExactRational, RoundTripsDyadicDoubles) {
  for (const double x : {0.0, 1.0, -0.375, 0x1p-53, 6.25, 1048577.0}) {
    EXPECT_EQ(util::exact_rational(x).to_double(), x) << x;
  }
  EXPECT_THROW((void)util::exact_rational(std::numeric_limits<double>::quiet_NaN()), NumericError);
  EXPECT_TRUE(util::representable_as_double(Rational{3, 8}));
  EXPECT_TRUE(util::representable_as_double(Rational{1}));
  EXPECT_FALSE(util::representable_as_double(Rational{1, 3}));
  EXPECT_FALSE(util::representable_as_double(Rational{37, 100}));
}

TEST(CertifiedThreshold, EnclosureContainsExactValueOnSmallInstances) {
  // Cross-check every tier against the independent exact kernel. Thresholds
  // are dyadic so tier 0 is eligible; the enclosure from whichever tier the
  // ladder settles on must contain the true rational value.
  const std::vector<std::vector<Rational>> instances = {
      {Rational{1, 2}},
      {Rational{1, 4}, Rational{3, 4}},
      {Rational{1, 8}, Rational{1, 2}, Rational{7, 8}},
      {Rational{3, 8}, Rational{3, 8}, Rational{3, 8}, Rational{3, 8}},
  };
  for (const auto& a : instances) {
    for (const Rational& t : {Rational{1, 2}, Rational{1}, Rational{3, 2}}) {
      const Rational exact = core::threshold_winning_probability(a, t);
      const CertifiedValue certified = core::certified_threshold_winning_probability(a, t);
      EXPECT_TRUE(certified.enclosure.contains(exact))
          << "n=" << a.size() << " t=" << t.to_double();
      EXPECT_TRUE(certified.met_tolerance);
    }
  }
}

TEST(CertifiedThreshold, NonpositiveThresholdIsExactZero) {
  const std::vector<Rational> a = {Rational{1, 2}, Rational{1, 2}};
  const CertifiedValue certified = core::certified_threshold_winning_probability(a, Rational{0});
  EXPECT_EQ(certified.enclosure.width(), Rational{0});
  EXPECT_TRUE(certified.enclosure.contains(Rational{0}));
  EXPECT_TRUE(certified.met_tolerance);
}

TEST(CertifiedThreshold, RejectsBadInputs) {
  EXPECT_THROW((void)core::certified_threshold_winning_probability({}, Rational{1}),
               std::invalid_argument);
  const std::vector<Rational> out_of_range = {Rational{3, 2}};
  EXPECT_THROW((void)core::certified_threshold_winning_probability(out_of_range, Rational{1}),
               std::invalid_argument);
}

TEST(CertifiedSymmetric, EnclosureContainsExactValue) {
  for (const std::uint32_t n : {1u, 3u, 8u, 15u}) {
    const Rational beta{3, 8};
    const Rational t{n, 3};
    const Rational exact = core::symmetric_threshold_winning_probability(n, beta, t);
    const CertifiedValue certified =
        core::certified_symmetric_threshold_winning_probability(n, beta, t);
    EXPECT_TRUE(certified.enclosure.contains(exact)) << "n=" << n;
    EXPECT_TRUE(certified.met_tolerance) << "n=" << n;
  }
}

TEST(CertifiedSymmetric, EscalatesDoubleToIntervalAtN24) {
  // Acceptance-criteria instance: n = 24, beta = 3/8, t = 8. The alternating
  // sum cancels ~ 10^16 worth of leading digits, so the compensated-double
  // tier's error bound blows past the default 1e-9 tolerance and the ladder
  // must escalate to the interval tier — whose enclosure still contains the
  // exact value.
  EvalStats stats;
  EvalPolicy policy;
  policy.stats = &stats;
  const Rational beta{3, 8};
  const Rational t{8};
  const CertifiedValue certified =
      core::certified_symmetric_threshold_winning_probability(24, beta, t, policy);
  EXPECT_EQ(stats.double_attempts, 1u);
  EXPECT_GE(stats.interval_attempts, 1u);
  EXPECT_GE(stats.escalations, 1u);
  EXPECT_EQ(certified.tier, EvalTier::kInterval);
  EXPECT_TRUE(certified.met_tolerance);
  const Rational exact = core::symmetric_threshold_winning_probability(24, beta, t);
  EXPECT_TRUE(certified.enclosure.contains(exact));
  EXPECT_TRUE(certified.width() <= policy.tolerance);
}

TEST(CertifiedSymmetric, ResultStatsArePerEvaluationWhilePolicyStatsAccumulate) {
  // Regression: a single EvalStats attached to the policy of a sweep used to
  // be the only counter, so per-point reporting showed cumulative totals
  // (1, 2, 3, ... escalations across points). CertifiedValue::stats must
  // carry the delta for each evaluation alone; the policy-attached view keeps
  // accumulating.
  EvalStats cumulative;
  EvalPolicy policy;
  policy.stats = &cumulative;
  const Rational beta{3, 8};
  const Rational t{8};
  // n = 24 forces exactly one escalation (double -> interval) per call.
  const CertifiedValue first =
      core::certified_symmetric_threshold_winning_probability(24, beta, t, policy);
  const CertifiedValue second =
      core::certified_symmetric_threshold_winning_probability(24, beta, t, policy);
  EXPECT_EQ(first.stats.double_attempts, 1u);
  EXPECT_EQ(second.stats.double_attempts, 1u);
  EXPECT_EQ(first.stats.escalations, second.stats.escalations);
  EXPECT_GE(first.stats.escalations, 1u);
  // The policy view accumulates across both calls.
  EXPECT_EQ(cumulative.double_attempts, 2u);
  EXPECT_EQ(cumulative.escalations, first.stats.escalations + second.stats.escalations);
  // With no policy hook attached, the per-evaluation counters still work.
  const CertifiedValue bare = core::certified_symmetric_threshold_winning_probability(24, beta, t);
  EXPECT_EQ(bare.stats.double_attempts, 1u);
  EXPECT_EQ(bare.stats.escalations, first.stats.escalations);
}

TEST(CertifiedSymmetric, UnrepresentableInputsSkipDoubleTierViaNumericError) {
  // beta = 37/100 has no finite binary expansion, so the double tier cannot
  // evaluate the *same* instance; it must abandon via NumericError (counted
  // in stats) and the interval tier takes over.
  EvalStats stats;
  EvalPolicy policy;
  policy.stats = &stats;
  const CertifiedValue certified = core::certified_symmetric_threshold_winning_probability(
      6, Rational{37, 100}, Rational{2}, policy);
  EXPECT_GE(stats.numeric_errors, 1u);
  EXPECT_NE(certified.tier, EvalTier::kCompensatedDouble);
  const Rational exact =
      core::symmetric_threshold_winning_probability(6, Rational{37, 100}, Rational{2});
  EXPECT_TRUE(certified.enclosure.contains(exact));
}

TEST(CertifiedSymmetric, MaxTierCapsTheLadder) {
  // Same ill-conditioned instance, but the ladder is forbidden to leave the
  // double tier: it must still return a valid (wide) enclosure and report
  // that the tolerance was not met, rather than throwing.
  EvalPolicy policy;
  policy.max_tier = EvalTier::kCompensatedDouble;
  const CertifiedValue certified =
      core::certified_symmetric_threshold_winning_probability(24, Rational{3, 8}, Rational{8},
                                                              policy);
  EXPECT_EQ(certified.tier, EvalTier::kCompensatedDouble);
  EXPECT_FALSE(certified.met_tolerance);
  const Rational exact =
      core::symmetric_threshold_winning_probability(24, Rational{3, 8}, Rational{8});
  EXPECT_TRUE(certified.enclosure.contains(exact));
}

TEST(CertifiedSymmetric, ZeroToleranceForcesExactTier) {
  EvalStats stats;
  EvalPolicy policy;
  policy.tolerance = Rational{0};
  policy.stats = &stats;
  const CertifiedValue certified = core::certified_symmetric_threshold_winning_probability(
      5, Rational{1, 2}, Rational{2}, policy);
  EXPECT_EQ(certified.tier, EvalTier::kExact);
  EXPECT_TRUE(certified.met_tolerance);
  EXPECT_EQ(certified.enclosure.width(), Rational{0});
  EXPECT_EQ(stats.exact_attempts, 1u);
  EXPECT_EQ(certified.enclosure.lo(),
            core::symmetric_threshold_winning_probability(5, Rational{1, 2}, Rational{2}));
}

TEST(CertifiedSymmetric, AgreesWithSymbolicPiecewiseAnalysis) {
  // Independent cross-check: the exact symbolic pieces of
  // SymmetricThresholdAnalysis evaluated at rational probes must land inside
  // the ladder's enclosure for the same (n, beta, t).
  for (const std::uint32_t n : {2u, 4u, 6u}) {
    const Rational t{static_cast<std::int64_t>(n), 3};
    const auto analysis = core::SymmetricThresholdAnalysis::build(n, t);
    for (const Rational& beta :
         {Rational{1, 4}, Rational{1, 2}, Rational{5, 8}, Rational{2, 3}}) {
      const Rational symbolic = analysis.winning_probability()(beta);
      const CertifiedValue certified =
          core::certified_symmetric_threshold_winning_probability(n, beta, t);
      EXPECT_TRUE(certified.enclosure.contains(symbolic))
          << "n=" << n << " beta=" << beta.to_double();
    }
  }
}

TEST(CertifiedVolume, EnclosureContainsExactValue) {
  const std::vector<Rational> sigma = {Rational{1, 2}, Rational{1, 3}, Rational{1, 4}};
  const std::vector<Rational> pi = {Rational{1, 4}, Rational{1, 4}, Rational{1, 8}};
  const Rational exact = geom::simplex_box_volume(sigma, pi);
  const CertifiedValue certified = geom::certified_simplex_box_volume(sigma, pi);
  EXPECT_TRUE(certified.enclosure.contains(exact));
  EXPECT_TRUE(certified.met_tolerance);
}

TEST(CertifiedVolume, UnrepresentableSidesUseIntervalTier) {
  EvalStats stats;
  EvalPolicy policy;
  policy.stats = &stats;
  const std::vector<Rational> sigma = {Rational{1, 3}, Rational{1, 7}};
  const std::vector<Rational> pi = {Rational{1, 5}, Rational{1, 11}};
  const CertifiedValue certified = geom::certified_simplex_box_volume(sigma, pi, policy);
  // Tier 0 is attempted but must abandon via NumericError (inputs not dyadic).
  EXPECT_GE(stats.numeric_errors, 1u);
  EXPECT_NE(certified.tier, EvalTier::kCompensatedDouble);
  EXPECT_TRUE(certified.enclosure.contains(geom::simplex_box_volume(sigma, pi)));
}

TEST(DoubleKernels, GuardNonFiniteIntermediates) {
  // The plain double kernels must throw NumericError instead of silently
  // returning inf/NaN when an intermediate overflows: a degenerate box with a
  // denormal-tiny side makes pi/sigma overflow in simplex_box_volume_double.
  const std::vector<double> sigma = {5e-324, 0.5};
  const std::vector<double> pi = {1.0, 0.25};
  EXPECT_THROW((void)geom::simplex_box_volume_double(sigma, pi), NumericError);
}

TEST(EvalTierNames, AreHumanReadable) {
  EXPECT_STREQ(to_string(EvalTier::kCompensatedDouble), "compensated-double");
  EXPECT_STREQ(to_string(EvalTier::kInterval), "interval");
  EXPECT_STREQ(to_string(EvalTier::kExact), "exact");
}

}  // namespace
}  // namespace ddm
