// Compiled-plan property tests (poly/compiled.hpp): the Horner lowering must
// stay within its own certified per-piece error bound of the EXACT piecewise
// polynomial — verified in exact rational arithmetic so the check itself adds
// no rounding slack — and eval_grid must match eval bitwise. Also covers the
// reference-kernel cross-check on random (n, t, β) grids, breakpoint
// selection (left piece wins), single-piece and out-of-domain edge cases.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/reference_kernels.hpp"
#include "core/symmetric_threshold.hpp"
#include "poly/compiled.hpp"
#include "poly/piecewise.hpp"
#include "prob/rng.hpp"

namespace ddm {
namespace {

using poly::CompiledPiecewise;
using poly::Piece;
using poly::PiecewisePolynomial;
using poly::QPoly;
using util::Rational;

QPoly make_poly(std::vector<Rational> coeffs_low_first) {
  return QPoly{std::move(coeffs_low_first)};
}

// |compiled(x) − exact(clamp(x))| <= error_bound(x), checked exactly: both
// the observed value and the bound go through Rational::from_double, so the
// comparison itself cannot round.
void expect_within_certificate(const CompiledPiecewise& plan, const PiecewisePolynomial& exact,
                               double x) {
  const double value = plan.eval(x);
  const double bound = plan.error_bound(x);
  Rational arg = Rational::from_double(x);
  if (arg < exact.domain_lo()) arg = exact.domain_lo();
  if (arg > exact.domain_hi()) arg = exact.domain_hi();
  const Rational observed = (Rational::from_double(value) - exact(arg)).abs();
  EXPECT_LE(observed, Rational::from_double(bound))
      << "x = " << x << ", value = " << value << ", bound = " << bound;
}

std::vector<double> sample_grid(const CompiledPiecewise& plan, std::size_t steps,
                                prob::Rng& rng) {
  std::vector<double> xs;
  const double lo = plan.domain_lo();
  const double hi = plan.domain_hi();
  for (std::size_t k = 0; k <= steps; ++k) {
    xs.push_back(lo + (hi - lo) * static_cast<double>(k) / static_cast<double>(steps));
  }
  for (std::size_t k = 0; k < steps; ++k) {
    xs.push_back(lo + (hi - lo) * rng.uniform());
  }
  // Breakpoints and their double neighbourhoods exercise the selection rule.
  for (const poly::CompiledPiece& piece : plan.pieces()) {
    xs.push_back(piece.lo);
    xs.push_back(piece.hi);
    xs.push_back(std::nextafter(piece.lo, hi));
    xs.push_back(std::nextafter(piece.hi, lo));
  }
  return xs;
}

TEST(CompiledPlan, CertificateContainsObservedErrorOnSymmetricInstances) {
  prob::Rng rng{2024};
  // The n = 12, t = 4 case is the CLI acceptance instance
  // (`ddm_cli sweep 12 4 0 1 10000 --engine=compiled`).
  const struct {
    std::uint32_t n;
    Rational t;
  } cases[] = {{3, Rational{1}},
               {4, Rational{4, 3}},
               {6, Rational{2}},
               {8, Rational{3}},
               {12, Rational{4}}};
  for (const auto& c : cases) {
    const auto analysis = core::SymmetricThresholdAnalysis::build(c.n, c.t);
    const PiecewisePolynomial& exact = analysis.winning_probability();
    const CompiledPiecewise plan = CompiledPiecewise::lower(exact);
    EXPECT_EQ(plan.piece_count(), exact.pieces().size());
    EXPECT_GT(plan.max_error_bound(), 0.0);
    for (const double x : sample_grid(plan, 64, rng)) {
      expect_within_certificate(plan, exact, x);
    }
  }
}

TEST(CompiledPlan, EvalGridBitwiseMatchesEval) {
  prob::Rng rng{7};
  const auto analysis = core::SymmetricThresholdAnalysis::build(5, Rational{5, 3});
  const CompiledPiecewise plan = CompiledPiecewise::lower(analysis.winning_probability());
  const std::vector<double> xs = sample_grid(plan, 300, rng);
  const std::vector<double> grid = plan.eval_grid(xs);
  ASSERT_EQ(grid.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(grid[i], plan.eval(xs[i])) << "i = " << i << ", x = " << xs[i];
  }
}

TEST(CompiledPlan, MatchesReferenceKernelOnRandomGrids) {
  // The reference evaluator carries its own double roundoff, so the
  // comparison gets the certificate plus a small independent slack.
  prob::Rng rng{99};
  for (const std::uint32_t n : {3u, 5u, 7u}) {
    const double t = 0.25 + 0.4 * static_cast<double>(n) * rng.uniform();
    const Rational t_exact = Rational::from_double(t);
    const auto analysis = core::SymmetricThresholdAnalysis::build(n, t_exact);
    const CompiledPiecewise plan = CompiledPiecewise::lower(analysis.winning_probability());
    for (int k = 0; k < 25; ++k) {
      const double beta = rng.uniform();
      const std::vector<double> point(n, beta);
      const double reference = reference::threshold_winning_probability(point, t);
      EXPECT_NEAR(plan.eval(beta), reference, plan.error_bound(beta) + 1e-9)
          << "n = " << n << ", beta = " << beta;
    }
  }
}

TEST(CompiledPlan, LeftPieceWinsAtSharedBreakpoint) {
  // Discontinuous two-piece plan with exactly representable breakpoints: the
  // lowering is exact (constant coefficients, dyadic breaks), so the bound is
  // 0 and selection is observable directly.
  const PiecewisePolynomial source{std::vector<Piece>{
      {Rational{0}, Rational{1, 2}, make_poly({Rational{1}})},
      {Rational{1, 2}, Rational{1}, make_poly({Rational{2}})},
  }};
  const CompiledPiecewise plan = CompiledPiecewise::lower(source);
  EXPECT_EQ(plan.max_error_bound(), 0.0);
  EXPECT_EQ(plan.eval(0.0), 1.0);
  EXPECT_EQ(plan.eval(0.5), 1.0);  // left piece wins
  EXPECT_EQ(plan.eval(std::nextafter(0.5, 1.0)), 2.0);
  EXPECT_EQ(plan.eval(1.0), 2.0);
  EXPECT_EQ(plan.error_bound(0.25), 0.0);
}

TEST(CompiledPlan, SinglePieceAndDomainEdges) {
  // One piece, p(x) = x² − x/2 on [0, 1]: dyadic everywhere, so eval is
  // Horner on exact coefficients.
  const PiecewisePolynomial source{std::vector<Piece>{
      {Rational{0}, Rational{1}, make_poly({Rational{0}, Rational{-1, 2}, Rational{1}})},
  }};
  const CompiledPiecewise plan = CompiledPiecewise::lower(source);
  EXPECT_EQ(plan.piece_count(), 1u);
  EXPECT_EQ(plan.domain_lo(), 0.0);
  EXPECT_EQ(plan.domain_hi(), 1.0);
  EXPECT_EQ(plan.eval(0.0), 0.0);
  EXPECT_EQ(plan.eval(1.0), 0.5);
  EXPECT_EQ(plan.eval(0.25), 0.25 * 0.25 - 0.5 * 0.25);
  EXPECT_THROW((void)plan.eval(-0.001), std::out_of_range);
  EXPECT_THROW((void)plan.eval(1.001), std::out_of_range);
  EXPECT_THROW((void)plan.error_bound(2.0), std::out_of_range);
}

TEST(CompiledPlan, EvalGridValidatesSpanSizes) {
  const PiecewisePolynomial source{std::vector<Piece>{
      {Rational{0}, Rational{1}, make_poly({Rational{1, 3}, Rational{1}})},
  }};
  const CompiledPiecewise plan = CompiledPiecewise::lower(source);
  const std::vector<double> xs{0.1, 0.2};
  std::vector<double> out(3, 0.0);
  EXPECT_THROW(plan.eval_grid(xs, out), std::invalid_argument);
  EXPECT_TRUE(plan.eval_grid(std::span<const double>{}).empty());
}

TEST(CompiledPlan, NonDyadicCoefficientsCarryPositiveBound) {
  // 1/3 is not a double, so the coefficient-rounding term must be non-zero —
  // and still contain the observed defect at every sampled point.
  const PiecewisePolynomial source{std::vector<Piece>{
      {Rational{0}, Rational{1}, make_poly({Rational{1, 3}, Rational{-2, 7}, Rational{5, 11}})},
  }};
  const CompiledPiecewise plan = CompiledPiecewise::lower(source);
  EXPECT_GT(plan.max_error_bound(), 0.0);
  EXPECT_LT(plan.max_error_bound(), 1e-14);
  prob::Rng rng{11};
  for (int k = 0; k < 50; ++k) {
    expect_within_certificate(plan, source, rng.uniform());
  }
}

}  // namespace
}  // namespace ddm
