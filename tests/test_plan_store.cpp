// Tests for the persistent plan store (poly/plan_store.hpp): bitwise
// round-trip through save/load, mapped-storage lifetime, and the full
// validate-on-load rejection matrix — truncation, bit flips, stale format
// versions, forged structure, and certificates that no longer clear their
// recorded tolerance. Every corruption must surface as a typed
// ddm::PlanStoreError naming the (n, t) pair; a wrong plan is never served.
// The PlanCache fallthrough tests pin the warm-start contract: a store hit
// answers without lowering, and a corrupt/stale store degrades to lowering
// with the failure counted, never propagated.
#include "poly/plan_store.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/symmetric_threshold.hpp"
#include "engine/plan_cache.hpp"
#include "util/fault.hpp"
#include "util/status.hpp"

namespace ddm::poly {
namespace {

using util::Rational;

// Header offsets from the format contract in plan_store.hpp — fixed by the
// on-disk format, so spelling them here keeps the tests honest about layout.
constexpr std::size_t kOffVersion = 8;
constexpr std::size_t kOffTLen = 32;
constexpr std::size_t kOffCertLen = 40;
constexpr std::size_t kOffTolerance = 56;
constexpr std::size_t kOffPayloadChecksum = 72;
constexpr std::size_t kOffHeaderChecksum = 80;
constexpr std::size_t kHeaderSize = 88;
constexpr std::size_t kAlign = 64;

CompiledPiecewise lower_plan(std::uint32_t n, const Rational& t) {
  return CompiledPiecewise::lower(
      core::SymmetricThresholdAnalysis::build(n, t).winning_probability());
}

class PlanStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Suffix the pid: ctest runs the discovered per-test processes and the
    // DDM_THREADS-pinned whole-suite registrations concurrently, and two
    // processes sharing a fixture directory race each other's TearDown.
    dir_ = ::testing::TempDir() + "ddm_plan_store_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    // The configured store is process-global; never leak it into other tests.
    PlanStore::set_configured(nullptr);
    util::fault::clear_plan();
    std::filesystem::remove_all(dir_);
  }

  static std::vector<char> read_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }
  static void write_bytes(const std::string& path, const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  template <typename T>
  static void patch(std::vector<char>& bytes, std::size_t offset, const T& value) {
    std::memcpy(bytes.data() + offset, &value, sizeof(T));
  }
  template <typename T>
  static T peek(const std::vector<char>& bytes, std::size_t offset) {
    T value;
    std::memcpy(&value, bytes.data() + offset, sizeof(T));
    return value;
  }
  /// Recomputes both checksums after a deliberate edit, in dependency order:
  /// the payload checksum field lives inside the header-checksummed region.
  static void fix_checksums(std::vector<char>& bytes) {
    patch(bytes, kOffPayloadChecksum,
          plan_store_checksum(bytes.data() + kHeaderSize, bytes.size() - kHeaderSize));
    patch(bytes, kOffHeaderChecksum, plan_store_checksum(bytes.data(), kOffHeaderChecksum));
  }
  /// File offset of the breakpoint array (format contract: doubles start at
  /// the first 64-byte boundary past header + t string + certificate blob).
  static std::size_t breaks_offset(const std::vector<char>& bytes) {
    const auto t_len = peek<std::uint64_t>(bytes, kOffTLen);
    const auto cert_len = peek<std::uint64_t>(bytes, kOffCertLen);
    const std::size_t raw = kHeaderSize + static_cast<std::size_t>(t_len) +
                            static_cast<std::size_t>(cert_len);
    return (raw + kAlign - 1) / kAlign * kAlign;
  }

  std::string dir_;
};

TEST_F(PlanStoreTest, RoundTripIsBitwiseIdentical) {
  const PlanStore store(dir_);
  const Rational t{2};
  const CompiledPiecewise plan = lower_plan(6, t);
  store.save(6, t, plan, 1e-9);
  const auto loaded = store.load(6, t);
  ASSERT_NE(loaded, nullptr);
  ASSERT_EQ(loaded->piece_count(), plan.piece_count());
  EXPECT_EQ(loaded->breakpoints(), plan.breakpoints());
  EXPECT_EQ(loaded->max_error_bound(), plan.max_error_bound());
  EXPECT_EQ(loaded->piece_certificates(), plan.piece_certificates());
  for (std::size_t p = 0; p < plan.piece_count(); ++p) {
    EXPECT_EQ(loaded->pieces()[p].lo, plan.pieces()[p].lo);
    EXPECT_EQ(loaded->pieces()[p].hi, plan.pieces()[p].hi);
    EXPECT_EQ(loaded->pieces()[p].coeff_begin, plan.pieces()[p].coeff_begin);
    EXPECT_EQ(loaded->pieces()[p].coeff_count, plan.pieces()[p].coeff_count);
    EXPECT_EQ(loaded->pieces()[p].error_bound, plan.pieces()[p].error_bound);
  }
  // The reconstituted plan evaluates bitwise identically, scalar and grid.
  std::vector<double> xs;
  for (int i = 0; i <= 64; ++i) xs.push_back(static_cast<double>(i) / 64.0);
  const std::vector<double> expected = plan.eval_grid(xs);
  const std::vector<double> actual = loaded->eval_grid(xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "x = " << xs[i];
    EXPECT_EQ(loaded->eval(xs[i]), plan.eval(xs[i])) << "x = " << xs[i];
  }
}

TEST_F(PlanStoreTest, MappedStorageOutlivesTheStoreHandle) {
  const Rational t{4, 3};
  std::shared_ptr<const CompiledPiecewise> loaded;
  double expected = 0.0;
  {
    const PlanStore store(dir_);
    const CompiledPiecewise plan = lower_plan(4, t);
    expected = plan.eval(0.625);
    store.save(4, t, plan, 1e-9);
    loaded = store.load(4, t);
    ASSERT_NE(loaded, nullptr);
  }
  // The store object is gone; the plan's borrowed coefficient arrays must
  // stay alive through the storage keepalive it carries.
  EXPECT_EQ(loaded->eval(0.625), expected);
}

TEST_F(PlanStoreTest, MissingFileLoadsAsNull) {
  const PlanStore store(dir_);
  EXPECT_EQ(store.load(17, Rational{2}), nullptr);
  EXPECT_TRUE(store.list_paths().empty());
}

TEST_F(PlanStoreTest, SaveRefusesAPlanOverTheTolerance) {
  const PlanStore store(dir_);
  const Rational t{2};
  const CompiledPiecewise plan = lower_plan(6, t);
  ASSERT_GT(plan.max_error_bound(), 1e-15);
  try {
    store.save(6, t, plan, 1e-15);
    FAIL() << "expected PlanStoreError";
  } catch (const PlanStoreError& error) {
    EXPECT_EQ(error.n(), 6u);
    EXPECT_NE(std::string(error.what()).find("refusing to persist"), std::string::npos);
  }
  EXPECT_TRUE(store.list_paths().empty());  // nothing was published
}

// --- the corruption rejection matrix -------------------------------------

TEST_F(PlanStoreTest, TruncatedFileIsRejected) {
  const PlanStore store(dir_);
  const Rational t{2};
  store.save(6, t, lower_plan(6, t), 1e-9);
  const std::string path = store.path_for(6, t);
  std::vector<char> bytes = read_bytes(path);
  // Payload cut short (checksums untouched — truncation must be caught by
  // layout validation before any checksum walks off the end).
  std::vector<char> cut(bytes.begin(), bytes.end() - 7);
  write_bytes(path, cut);
  try {
    (void)store.load(6, t);
    FAIL() << "expected PlanStoreError";
  } catch (const PlanStoreError& error) {
    EXPECT_FALSE(error.stale());
    EXPECT_NE(std::string(error.what()).find("truncated"), std::string::npos) << error.what();
  }
  // Shorter than the header itself.
  write_bytes(path, std::vector<char>(bytes.begin(), bytes.begin() + 20));
  EXPECT_THROW((void)store.load(6, t), PlanStoreError);
}

TEST_F(PlanStoreTest, BitFlippedCoefficientIsRejected) {
  const PlanStore store(dir_);
  const Rational t{2};
  store.save(6, t, lower_plan(6, t), 1e-9);
  const std::string path = store.path_for(6, t);
  std::vector<char> bytes = read_bytes(path);
  bytes[bytes.size() - 5] ^= 0x10;  // one bit in the coefficient region
  write_bytes(path, bytes);
  try {
    (void)store.load(6, t);
    FAIL() << "expected PlanStoreError";
  } catch (const PlanStoreError& error) {
    EXPECT_FALSE(error.stale());
    EXPECT_NE(std::string(error.what()).find("payload checksum"), std::string::npos)
        << error.what();
  }
}

TEST_F(PlanStoreTest, StaleFormatVersionIsRejectedAsStale) {
  const PlanStore store(dir_);
  const Rational t{2};
  store.save(3, t, lower_plan(3, t), 1e-9);
  const std::string path = store.path_for(3, t);
  std::vector<char> bytes = read_bytes(path);
  patch(bytes, kOffVersion, std::uint32_t{kPlanStoreFormatVersion + 41});
  // Deliberately NOT fixing the header checksum: version skew must be
  // diagnosed before the checksum so a reader never misreports a future
  // layout as corruption.
  write_bytes(path, bytes);
  try {
    (void)store.load(3, t);
    FAIL() << "expected PlanStoreError";
  } catch (const PlanStoreError& error) {
    EXPECT_TRUE(error.stale());
    EXPECT_NE(std::string(error.what()).find("stale format version"), std::string::npos)
        << error.what();
  }
}

TEST_F(PlanStoreTest, CertificateNoLongerClearingToleranceIsRejected) {
  const PlanStore store(dir_);
  const Rational t{2};
  store.save(6, t, lower_plan(6, t), 1e-9);
  const std::string path = store.path_for(6, t);
  std::vector<char> bytes = read_bytes(path);
  // Tighten the recorded tolerance below the plan's certificate, with both
  // checksums made internally consistent: only the semantic certificate
  // check can catch this.
  patch(bytes, kOffTolerance, 1e-15);
  fix_checksums(bytes);
  write_bytes(path, bytes);
  try {
    (void)store.load(6, t);
    FAIL() << "expected PlanStoreError";
  } catch (const PlanStoreError& error) {
    EXPECT_FALSE(error.stale());
    EXPECT_EQ(error.n(), 6u);
    EXPECT_NE(std::string(error.what()).find("no longer clears"), std::string::npos)
        << error.what();
  }
}

TEST_F(PlanStoreTest, ForgedBreakpointOrderIsRejected) {
  const PlanStore store(dir_);
  const Rational t{2};
  store.save(6, t, lower_plan(6, t), 1e-9);
  const std::string path = store.path_for(6, t);
  std::vector<char> bytes = read_bytes(path);
  // Break monotonicity with checksums recomputed — only the structural
  // validation in from_stored stands between this file and a wrong answer.
  const std::size_t off = breaks_offset(bytes);
  const double b0 = peek<double>(bytes, off);
  const double b1 = peek<double>(bytes, off + sizeof(double));
  patch(bytes, off, b1);
  patch(bytes, off + sizeof(double), b0);
  fix_checksums(bytes);
  write_bytes(path, bytes);
  try {
    (void)store.load(6, t);
    FAIL() << "expected PlanStoreError";
  } catch (const PlanStoreError& error) {
    EXPECT_FALSE(error.stale());
    EXPECT_EQ(error.n(), 6u);
  }
}

TEST_F(PlanStoreTest, EditedErrorBoundFailsTheCertificateChain) {
  const PlanStore store(dir_);
  const Rational t{2};
  store.save(6, t, lower_plan(6, t), 1e-9);
  const std::string path = store.path_for(6, t);
  std::vector<char> bytes = read_bytes(path);
  // Understate the last piece's double error bound (an attacker trying to
  // make a sloppy plan look certified); the exact rational certificate no
  // longer reproduces it.
  const CompiledPiecewise plan = lower_plan(6, t);
  const std::size_t pieces_off =
      breaks_offset(bytes) + (plan.piece_count() + 1) * sizeof(double);
  const std::size_t bound_off = pieces_off + (plan.piece_count() - 1) * 40 + 32;
  patch(bytes, bound_off, 0.0);
  fix_checksums(bytes);
  write_bytes(path, bytes);
  try {
    (void)store.load(6, t);
    FAIL() << "expected PlanStoreError";
  } catch (const PlanStoreError& error) {
    EXPECT_NE(std::string(error.what()).find("certificate"), std::string::npos) << error.what();
  }
}

TEST_F(PlanStoreTest, FileRenamedToAnotherPairIsRejected) {
  const PlanStore store(dir_);
  const Rational t{2};
  store.save(6, t, lower_plan(6, t), 1e-9);
  std::filesystem::copy_file(store.path_for(6, t), store.path_for(7, t));
  try {
    (void)store.load(7, t);
    FAIL() << "expected PlanStoreError";
  } catch (const PlanStoreError& error) {
    EXPECT_EQ(error.n(), 7u);
    EXPECT_NE(std::string(error.what()).find("different plan"), std::string::npos)
        << error.what();
  }
  // load_path adopts the identity from the file instead of rejecting it.
  const LoadedPlan by_path = store.load_path(store.path_for(7, t));
  EXPECT_EQ(by_path.n, 6u);
  EXPECT_EQ(by_path.t, "2");
}

// --- PlanCache fallthrough ------------------------------------------------

TEST_F(PlanStoreTest, CacheMissServedFromStoreSkipsLowering) {
  const Rational t{2};
  {
    const PlanStore store(dir_);
    store.save(6, t, lower_plan(6, t), 1e-9);
  }
  PlanStore::set_configured(std::make_shared<PlanStore>(dir_));
  engine::PlanCache cache;
  // A lowering attempt would throw; succeeding proves the store answered.
  util::fault::set_plan(util::fault::Plan::parse("throw@0"));
  const auto plan = cache.get_or_lower(6, t);
  util::fault::clear_plan();
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().store_hits, 1u);
  EXPECT_EQ(cache.stats().store_rejects, 0u);
  // Second call is a plain cache hit — the store is not consulted again.
  (void)cache.get_or_lower(6, t);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().store_hits, 1u);
}

TEST_F(PlanStoreTest, CorruptStoreFallsThroughToLoweringAndIsCounted) {
  const Rational t{2};
  const PlanStore store(dir_);
  store.save(6, t, lower_plan(6, t), 1e-9);
  std::vector<char> bytes = read_bytes(store.path_for(6, t));
  bytes[bytes.size() - 5] ^= 0x10;
  write_bytes(store.path_for(6, t), bytes);
  PlanStore::set_configured(std::make_shared<PlanStore>(dir_));
  engine::PlanCache cache;
  const auto plan = cache.get_or_lower(6, t);
  ASSERT_NE(plan, nullptr);  // re-lowered, not served from the corrupt file
  EXPECT_EQ(cache.stats().store_rejects, 1u);
  EXPECT_EQ(cache.stats().store_hits, 0u);
  EXPECT_EQ(cache.stats().store_stale, 0u);
}

TEST_F(PlanStoreTest, StaleStoreFallsThroughToLoweringAndIsCounted) {
  const Rational t{2};
  const PlanStore store(dir_);
  store.save(6, t, lower_plan(6, t), 1e-9);
  std::vector<char> bytes = read_bytes(store.path_for(6, t));
  patch(bytes, kOffVersion, std::uint32_t{kPlanStoreFormatVersion + 1});
  write_bytes(store.path_for(6, t), bytes);
  PlanStore::set_configured(std::make_shared<PlanStore>(dir_));
  engine::PlanCache cache;
  const auto plan = cache.get_or_lower(6, t);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(cache.stats().store_stale, 1u);
  EXPECT_EQ(cache.stats().store_rejects, 0u);
}

}  // namespace
}  // namespace ddm::poly
