// Tests for the exact polytope volumes of Section 2.1 (Lemma 2.1,
// Lemma 2.3, Proposition 2.2).
#include "geom/volume.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geom/mc_volume.hpp"
#include "geom/polytope.hpp"
#include "prob/rng.hpp"

namespace ddm::geom {
namespace {

using util::Rational;

std::vector<Rational> rvec(std::initializer_list<Rational> values) { return {values}; }

TEST(SimplexVolume, Lemma21Part1) {
  // Vol(Σ^m(σ)) = (1/m!) Π σ_l.
  EXPECT_EQ(simplex_volume(rvec({Rational{1}, Rational{1}})), Rational(1, 2));
  EXPECT_EQ(simplex_volume(rvec({Rational{1}, Rational{1}, Rational{1}})), Rational(1, 6));
  EXPECT_EQ(simplex_volume(rvec({Rational{2}, Rational{3}})), Rational{3});
  EXPECT_EQ(simplex_volume(rvec({Rational(1, 2), Rational(1, 3), Rational(1, 4)})),
            Rational(1, 144));
}

TEST(SimplexVolume, RejectsBadInput) {
  EXPECT_THROW((void)simplex_volume({}), std::invalid_argument);
  EXPECT_THROW((void)simplex_volume(rvec({Rational{1}, Rational{0}})), std::invalid_argument);
  EXPECT_THROW((void)simplex_volume(rvec({Rational{-1}})), std::invalid_argument);
}

TEST(BoxVolume, Lemma21Part2) {
  EXPECT_EQ(box_volume(rvec({Rational{2}, Rational{3}})), Rational{6});
  EXPECT_EQ(box_volume(rvec({Rational(1, 2), Rational(1, 2), Rational(1, 2)})), Rational(1, 8));
}

TEST(CornerSimplex, Lemma23) {
  // m = 2, σ = (1,1), π = (1/4, 1/4), I = {0}: scaled simplex with ratio
  // (1 − 1/4)² → volume (1/2)(3/4)² = 9/32.
  const auto sigma = rvec({Rational{1}, Rational{1}});
  const auto pi = rvec({Rational(1, 4), Rational(1, 4)});
  EXPECT_EQ(corner_simplex_volume(sigma, pi, std::vector<bool>{true, false}),
            Rational(9, 32));
  // I = both: ratio (1 − 1/2)² → (1/2)(1/4) = 1/8.
  EXPECT_EQ(corner_simplex_volume(sigma, pi, std::vector<bool>{true, true}), Rational(1, 8));
  // Infeasible subset (Σ π/σ >= 1) has volume 0.
  const auto big_pi = rvec({Rational(3, 4), Rational(3, 4)});
  EXPECT_EQ(corner_simplex_volume(sigma, big_pi, std::vector<bool>{true, true}), Rational{0});
  // Empty subset returns the full simplex volume.
  EXPECT_EQ(corner_simplex_volume(sigma, pi, std::vector<bool>{false, false}), Rational(1, 2));
}

TEST(SimplexBoxVolume, BoxInsideSimplex) {
  // Tiny box fully inside the simplex: volume equals the box volume.
  const auto sigma = rvec({Rational{10}, Rational{10}});
  const auto pi = rvec({Rational{1}, Rational{1}});
  EXPECT_EQ(simplex_box_volume(sigma, pi), Rational{1});
}

TEST(SimplexBoxVolume, SimplexInsideBox) {
  // Large box: volume equals the simplex volume.
  const auto sigma = rvec({Rational{1}, Rational{1}});
  const auto pi = rvec({Rational{5}, Rational{5}});
  EXPECT_EQ(simplex_box_volume(sigma, pi), Rational(1, 2));
}

TEST(SimplexBoxVolume, HandIntegrated2D) {
  // σ = (1,1), π = (3/4, 3/4): unit-sum triangle clipped to a 3/4-box.
  // Direct integration: 1/2 − 2 · (1/2)(1/4)² = 1/2 − 1/16 = 7/16.
  const auto sigma = rvec({Rational{1}, Rational{1}});
  const auto pi = rvec({Rational(3, 4), Rational(3, 4)});
  EXPECT_EQ(simplex_box_volume(sigma, pi), Rational(7, 16));
}

TEST(SimplexBoxVolume, HandIntegrated3D) {
  // σ = (1,1,1) scaled by t: Vol{x ∈ [0,1]³ : Σx ≤ 3/2} =
  // (1/6)(3/2)³ − 3·(1/6)(1/2)³ = 27/48 − 3/48 = 1/2 (Irwin–Hall symmetry).
  const auto sigma = rvec({Rational(3, 2), Rational(3, 2), Rational(3, 2)});
  const auto pi = rvec({Rational{1}, Rational{1}, Rational{1}});
  EXPECT_EQ(simplex_box_volume(sigma, pi), Rational(1, 2));
}

TEST(SimplexBoxVolume, DimensionMismatchThrows) {
  EXPECT_THROW((void)simplex_box_volume(rvec({Rational{1}}), rvec({Rational{1}, Rational{1}})),
               std::invalid_argument);
}

TEST(SimplexBoxVolume, MonotoneInBoxSides) {
  const auto sigma = rvec({Rational{1}, Rational{1}, Rational{1}});
  Rational previous{0};
  for (int i = 1; i <= 8; ++i) {
    const Rational side{i, 8};
    const auto pi = rvec({side, side, side});
    const Rational v = simplex_box_volume(sigma, pi);
    EXPECT_GE(v, previous);
    previous = v;
  }
}

TEST(SimplexBoxVolume, MonotoneInSimplexScale) {
  const auto pi = rvec({Rational(1, 2), Rational(1, 2)});
  Rational previous{0};
  for (int i = 1; i <= 10; ++i) {
    const Rational s{i, 4};
    const auto sigma = rvec({s, s});
    const Rational v = simplex_box_volume(sigma, pi);
    EXPECT_GE(v, previous);
    previous = v;
  }
}

TEST(SimplexBoxVolume, DoubleMatchesExact) {
  for (int dim = 1; dim <= 6; ++dim) {
    std::vector<Rational> sigma;
    std::vector<Rational> pi;
    std::vector<double> sigma_d;
    std::vector<double> pi_d;
    for (int l = 0; l < dim; ++l) {
      sigma.emplace_back(2 + l, 2);
      pi.emplace_back(1, 1 + l);
      sigma_d.push_back(sigma.back().to_double());
      pi_d.push_back(pi.back().to_double());
    }
    EXPECT_NEAR(simplex_box_volume_double(sigma_d, pi_d),
                simplex_box_volume(sigma, pi).to_double(), 1e-12)
        << "dim " << dim;
  }
}

TEST(SimplexBoxVolume, MatchesMonteCarlo) {
  // Cross-check Proposition 2.2 against rejection sampling in 4D.
  const std::vector<double> sigma{2.0, 1.5, 1.0, 2.5};
  const std::vector<double> pi{0.8, 0.9, 0.7, 1.0};
  const double exact = simplex_box_volume_double(sigma, pi);
  prob::Rng rng{2718};
  const Polytope polytope = Polytope::simplex_box(sigma, pi);
  const VolumeEstimate estimate = estimate_volume(polytope, pi, 400000, rng);
  EXPECT_NEAR(estimate.volume, exact, 5.0 * estimate.standard_error + 1e-9);
}

TEST(SimplexBoxVolume, AgreesWithInclusionExclusionOverCorners) {
  // Prop 2.2 must equal Vol(box) minus the inclusion-exclusion over corner
  // simplices of the *simplex* complement... equivalently, re-derive via
  // Lemma 2.3: Vol(ΣΠ) = Σ_I (−1)^{|I|} corner(I).
  const auto sigma = rvec({Rational{2}, Rational(3, 2), Rational{1}});
  const auto pi = rvec({Rational(2, 3), Rational(1, 2), Rational(3, 4)});
  Rational total{0};
  for (int mask = 0; mask < 8; ++mask) {
    std::vector<bool> subset(3);
    for (int l = 0; l < 3; ++l) subset[static_cast<std::size_t>(l)] = (mask >> l) & 1;
    const Rational corner = corner_simplex_volume(sigma, pi, subset);
    if (__builtin_popcount(static_cast<unsigned>(mask)) % 2 == 0) {
      total += corner;
    } else {
      total -= corner;
    }
  }
  EXPECT_EQ(simplex_box_volume(sigma, pi), total);
}

}  // namespace
}  // namespace ddm::geom
