// Tests for the shared parallel-execution engine (util/parallel.hpp):
// coverage of the index range, deterministic chunked reduction, exception
// propagation, nesting, and the worker-count cap.
#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace ddm::util {
namespace {

TEST(Parallelism, AtLeastOneLane) { EXPECT_GE(parallelism(), 1u); }

TEST(ParseThreadCount, AcceptsDecimalIntegersInRange) {
  EXPECT_EQ(parse_thread_count("DDM_THREADS", "1"), 1u);
  EXPECT_EQ(parse_thread_count("DDM_THREADS", "8"), 8u);
  EXPECT_EQ(parse_thread_count("DDM_THREADS", "4096"), 4096u);
}

TEST(ParseThreadCount, RejectsGarbageNamingTheVariable) {
  // Pre-fix, std::atoi silently mapped "abc" to 0 (then clamped to 1) and
  // "1e9" to 1 — a sweep the user meant to run wide ran serial instead.
  for (const char* bad : {"abc", "1e9", "", "0", "4097", "-2", "3.5", " 4", "4 ", "0x10"}) {
    try {
      (void)parse_thread_count("DDM_THREADS", bad);
      FAIL() << "expected ddm::Error for '" << bad << "'";
    } catch (const Error& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find("DDM_THREADS"), std::string::npos) << what;
      EXPECT_NE(what.find("invalid thread count"), std::string::npos) << what;
    }
  }
}

TEST(ParseThreadCount, RejectsOverflowBeyondUnsigned) {
  EXPECT_THROW((void)parse_thread_count("DDM_THREADS", "99999999999999999999"), Error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10007;  // prime: exercises a ragged final chunk
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(0, kN, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, RespectsGrainBoundaries) {
  constexpr std::size_t kN = 1000;
  constexpr std::size_t kGrain = 64;
  std::atomic<bool> bad{false};
  parallel_for(
      0, kN,
      [&](std::size_t lo, std::size_t hi) {
        if (lo % kGrain != 0 || (hi != kN && hi - lo != kGrain)) bad = true;
      },
      kGrain);
  EXPECT_FALSE(bad.load());
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(parallel_for(0, 100,
                            [](std::size_t lo, std::size_t) {
                              if (lo == 0) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, NestedCallsComplete) {
  std::atomic<int> total{0};
  parallel_for(0, 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      parallel_for(0, 16, [&](std::size_t ilo, std::size_t ihi) {
        total.fetch_add(static_cast<int>(ihi - ilo));
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ParallelFor, PropagatesExceptionFromNestedRegion) {
  // The inner region is started by pool workers, not the main thread; its
  // chunk exception must travel up through the outer region's helper-lending
  // machinery without being swallowed or deadlocking the pool.
  EXPECT_THROW(parallel_for(0, 8,
                            [](std::size_t lo, std::size_t) {
                              parallel_for(0, 16, [lo](std::size_t ilo, std::size_t) {
                                if (lo == 0 && ilo == 0) {
                                  throw std::runtime_error("nested boom");
                                }
                              });
                            }),
               std::runtime_error);
  // The pool must stay usable after the unwound nested failure.
  std::atomic<int> total{0};
  parallel_for(0, 32, [&](std::size_t lo, std::size_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ParallelReduce, MatchesSerialSum) {
  constexpr std::size_t kN = 4321;
  const std::uint64_t expected = kN * (kN - 1) / 2;
  const auto chunk_sum = [](std::size_t lo, std::size_t hi) {
    std::uint64_t s = 0;
    for (std::size_t i = lo; i < hi; ++i) s += i;
    return s;
  };
  const auto add = [](std::uint64_t a, std::uint64_t b) { return a + b; };
  EXPECT_EQ(parallel_reduce<std::uint64_t>(0, kN, 128, chunk_sum, add, 0), expected);
}

TEST(ParallelReduce, DeterministicAcrossWorkerCaps) {
  // Floating-point reduction: the chunk decomposition (and hence the fold
  // order) depends only on the grain, so capping the workers at 1, 2, or all
  // lanes must give bitwise-identical sums.
  constexpr std::size_t kN = 5000;
  const auto chunk_sum = [](std::size_t lo, std::size_t hi) {
    double s = 0.0;
    for (std::size_t i = lo; i < hi; ++i) s += 1.0 / (1.0 + static_cast<double>(i));
    return s;
  };
  const auto add = [](double a, double b) { return a + b; };
  const double serial = parallel_reduce<double>(0, kN, 64, chunk_sum, add, 0.0, 1);
  const double two = parallel_reduce<double>(0, kN, 64, chunk_sum, add, 0.0, 2);
  const double all = parallel_reduce<double>(0, kN, 64, chunk_sum, add, 0.0);
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, all);
}

TEST(ParallelReduce, PropagatesChunkException) {
  const auto chunk = [](std::size_t lo, std::size_t) -> int {
    if (lo >= 128) throw std::domain_error("reduce boom");
    return 1;
  };
  const auto add = [](int a, int b) { return a + b; };
  EXPECT_THROW((void)parallel_reduce<int>(0, 1024, 64, chunk, add, 0), std::domain_error);
}

}  // namespace
}  // namespace ddm::util
