// Cross-engine parity: every registered engine, run on the golden instances
// of tests/test_golden.cpp (n = 2..6, β = k/8, t = n/3) plus the n = 12,
// t = 4 acceptance instance, must agree with exact rational ground truth
// within its *stated* tolerance — 0 for exact evaluation, the plan
// certificate for compiled plans, tight float slack for the double kernels,
// the request tolerance for the certified ladder, and statistical slack for
// Monte Carlo. Any engine added to the registry is picked up automatically;
// an engine with no tolerance entry here fails loudly rather than silently
// passing with an arbitrary bound.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/nonoblivious.hpp"
#include "engine/evaluator.hpp"
#include "engine/registry.hpp"
#include "util/rational.hpp"

namespace ddm::engine {
namespace {

using util::Rational;

struct Instance {
  EvalRequest request;
  std::vector<Rational> truth;  ///< exact value per grid point
};

// The β = k/8 golden grid for one n, with exact ground truth computed by the
// library's rational evaluator (itself pinned by tests/test_golden.cpp).
Instance golden_instance(std::uint32_t n, Rational t) {
  Instance instance;
  std::vector<double> betas;
  std::vector<Rational> exact_betas;
  for (int key = 0; key <= 8; ++key) {
    betas.push_back(static_cast<double>(key) / 8.0);
    exact_betas.emplace_back(key, 8);
  }
  instance.request = EvalRequest::symmetric(n, t, std::move(betas));
  instance.request.exact_betas = std::move(exact_betas);
  for (const Rational& beta : instance.request.exact_betas) {
    instance.truth.push_back(core::symmetric_threshold_winning_probability(n, beta, t));
  }
  return instance;
}

std::vector<Instance> parity_instances() {
  std::vector<Instance> instances;
  for (std::uint32_t n = 2; n <= 6; ++n) {
    instances.push_back(golden_instance(n, Rational{static_cast<std::int64_t>(n), 3}));
  }
  // The acceptance instance: n = 12, t = 4 — large enough that the kernels
  // walk 3^12 subsets and the compiled plan's certificate is non-trivial.
  Instance acceptance;
  std::vector<double> betas{0.25, 0.375, 0.5, 0.625};
  std::vector<Rational> exact_betas{{1, 4}, {3, 8}, {1, 2}, {5, 8}};
  acceptance.request = EvalRequest::symmetric(12, Rational{4}, std::move(betas));
  acceptance.request.exact_betas = std::move(exact_betas);
  for (const Rational& beta : acceptance.request.exact_betas) {
    acceptance.truth.push_back(
        core::symmetric_threshold_winning_probability(12, beta, Rational{4}));
  }
  instances.push_back(std::move(acceptance));
  return instances;
}

// The stated per-engine agreement bound against exact ground truth. The
// compiled engine's bound comes from the outcome (its plan certificate);
// everything else is a fixed contract.
double stated_tolerance(const Evaluator& evaluator, const EvalRequest& request,
                        const EvalOutcome& outcome) {
  const std::string id{evaluator.id()};
  if (id == "exact") return 0.0;  // same rational, same rounding
  if (id == "kernel" || id == "batch") return 1e-9;  // double kernel float error
  if (id == "compiled") return outcome.certificate_bound + 1e-12;
  if (id == "certified") return request.tolerance.to_double() + 1e-12;
  if (id == "mc") {
    // > 6 sigma for p(1-p)/trials <= 1/(4*trials): deterministic seed keeps
    // this reproducible, the slack keeps it honest.
    return 6.5 * std::sqrt(0.25 / static_cast<double>(request.trials));
  }
  ADD_FAILURE() << "engine '" << id << "' has no stated parity tolerance — add one here";
  return 0.0;
}

TEST(EngineParity, EveryEngineMatchesExactGroundTruth) {
  Registry& registry = Registry::instance();
  for (const Instance& instance : parity_instances()) {
    EvalRequest request = instance.request;
    request.trials = 40000;  // keep the Monte Carlo leg fast but meaningful
    for (const std::string_view id : registry.ids()) {
      const Evaluator& evaluator = registry.require(id);
      ASSERT_TRUE(evaluator.supports(request))
          << "engine '" << id << "' rejects the n=" << request.n << " golden instance";
      const EvalOutcome outcome = evaluator.evaluate(request);
      ASSERT_EQ(outcome.values.size(), instance.truth.size()) << "engine '" << id << "'";
      EXPECT_EQ(outcome.engine_id, id);
      const double tolerance = stated_tolerance(evaluator, request, outcome);
      for (std::size_t k = 0; k < instance.truth.size(); ++k) {
        const double exact = instance.truth[k].to_double();
        EXPECT_NEAR(outcome.values[k], exact, tolerance)
            << "engine '" << id << "', n=" << request.n << ", beta=" << request.betas[k];
      }
    }
  }
}

TEST(EngineParity, KernelAndBatchAreBitwiseEqual) {
  // The batch kernel's documented contract: block amortization never changes
  // a bit relative to the serial single-point kernel.
  Registry& registry = Registry::instance();
  const Evaluator& kernel = registry.require("kernel");
  const Evaluator& batch = registry.require("batch");
  for (const Instance& instance : parity_instances()) {
    const EvalOutcome serial = kernel.evaluate(instance.request);
    const EvalOutcome amortized = batch.evaluate(instance.request);
    ASSERT_EQ(serial.values.size(), amortized.values.size());
    for (std::size_t k = 0; k < serial.values.size(); ++k) {
      EXPECT_EQ(serial.values[k], amortized.values[k])
          << "n=" << instance.request.n << ", beta=" << instance.request.betas[k];
    }
  }
}

TEST(EngineParity, CertificateBearingEnginesEncloseTheTruth) {
  Registry& registry = Registry::instance();
  for (const Instance& instance : parity_instances()) {
    for (const std::string_view id : {"exact", "certified"}) {
      const EvalOutcome outcome = registry.require(id).evaluate(instance.request);
      ASSERT_EQ(outcome.certificates.size(), instance.truth.size()) << "engine '" << id << "'";
      for (std::size_t k = 0; k < instance.truth.size(); ++k) {
        EXPECT_TRUE(outcome.certificates[k].enclosure.contains(instance.truth[k]))
            << "engine '" << id << "', n=" << instance.request.n << ", beta="
            << instance.request.betas[k] << ": enclosure excludes the exact value";
        EXPECT_TRUE(outcome.certificates[k].met_tolerance)
            << "engine '" << id << "', n=" << instance.request.n;
      }
    }
  }
}

TEST(EngineParity, CompiledCertificateBoundIsHonest) {
  // The compiled plan's a-priori bound must actually dominate the observed
  // error on the golden grid — otherwise the auto policy's tolerance check
  // is built on sand.
  const Evaluator& compiled = Registry::instance().require("compiled");
  for (const Instance& instance : parity_instances()) {
    const EvalOutcome outcome = compiled.evaluate(instance.request);
    ASSERT_TRUE(std::isfinite(outcome.certificate_bound));
    for (std::size_t k = 0; k < instance.truth.size(); ++k) {
      const double error = std::abs(outcome.values[k] - instance.truth[k].to_double());
      EXPECT_LE(error, outcome.certificate_bound + 1e-15)
          << "n=" << instance.request.n << ", beta=" << instance.request.betas[k];
    }
  }
}

}  // namespace
}  // namespace ddm::engine
