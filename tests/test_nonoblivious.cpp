// Tests for Theorem 5.1 — single-threshold winning probabilities.
#include "core/nonoblivious.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/protocol.hpp"
#include "prob/rng.hpp"
#include "prob/uniform_sum.hpp"
#include "sim/monte_carlo.hpp"

namespace ddm::core {
namespace {

using util::Rational;

TEST(ThresholdWinning, DegenerateThresholdZeroEqualsIrwinHall) {
  // a_i = 0 → everyone picks bin 1: P = IH_n(t).
  for (std::uint32_t n = 1; n <= 5; ++n) {
    const std::vector<Rational> a(n, Rational{0});
    for (int i = 1; i <= 6; ++i) {
      const Rational t{i, 2};
      EXPECT_EQ(threshold_winning_probability(a, t), prob::irwin_hall_cdf(n, t))
          << n << " " << t;
    }
  }
}

TEST(ThresholdWinning, DegenerateThresholdOneEqualsIrwinHall) {
  // a_i = 1 → everyone picks bin 0: P = IH_n(t).
  for (std::uint32_t n = 1; n <= 5; ++n) {
    const std::vector<Rational> a(n, Rational{1});
    for (int i = 1; i <= 6; ++i) {
      const Rational t{i, 2};
      EXPECT_EQ(threshold_winning_probability(a, t), prob::irwin_hall_cdf(n, t));
    }
  }
}

TEST(ThresholdWinning, SingleplayerAlwaysWinsForTAboveOne) {
  const std::vector<Rational> a{Rational(1, 2)};
  EXPECT_EQ(threshold_winning_probability(a, Rational{1}), Rational{1});
  // t = 1/2: wins iff its input <= 1/2 (bin 0) or input <= 1/2... player
  // with x > 1/2 goes to bin 1 and overflows iff x > t. P = P(x <= 1/2) +
  // P(x > 1/2 and x <= 1/2) = 1/2.
  EXPECT_EQ(threshold_winning_probability(a, Rational(1, 2)), Rational(1, 2));
}

TEST(ThresholdWinning, SymmetricAgreesWithGeneral) {
  for (std::uint32_t n = 1; n <= 6; ++n) {
    for (int b = 0; b <= 10; ++b) {
      const Rational beta{b, 10};
      const std::vector<Rational> a(n, beta);
      for (int i = 1; i <= 5; ++i) {
        const Rational t{i, 3};
        EXPECT_EQ(threshold_winning_probability(a, t),
                  symmetric_threshold_winning_probability(n, beta, t))
            << "n=" << n << " beta=" << beta << " t=" << t;
      }
    }
  }
}

TEST(ThresholdWinning, PaperValueN3Beta0622) {
  // Section 5.2.1: P(β) = −11/6 + 9β − 21/2 β² + 7/2 β³ on (1/2, 1].
  const Rational beta{622, 1000};
  const Rational expected = Rational(-11, 6) + Rational{9} * beta -
                            Rational(21, 2) * beta.pow(2) + Rational(7, 2) * beta.pow(3);
  EXPECT_EQ(symmetric_threshold_winning_probability(3, beta, Rational{1}), expected);
}

TEST(ThresholdWinning, PaperPieceN3LowRange) {
  // On [0, 1/2]: P(β) = 1/6 + 3/2 β² − 1/2 β³.
  for (int b = 0; b <= 5; ++b) {
    const Rational beta{b, 10};
    const Rational expected =
        Rational(1, 6) + Rational(3, 2) * beta.pow(2) - Rational(1, 2) * beta.pow(3);
    EXPECT_EQ(symmetric_threshold_winning_probability(3, beta, Rational{1}), expected)
        << "beta=" << beta;
  }
}

TEST(ThresholdWinning, MatchesSimulationHeterogeneous) {
  const std::vector<Rational> a{Rational(3, 5), Rational(1, 2), Rational(7, 10),
                                Rational(2, 5)};
  const SingleThresholdProtocol protocol{a};
  const Rational t{13, 10};
  const double exact = threshold_winning_probability(a, t).to_double();
  prob::Rng rng{31415};
  const sim::SimResult result =
      sim::estimate_winning_probability(protocol, t.to_double(), 400000, rng);
  EXPECT_TRUE(result.covers(exact)) << result.estimate << " vs " << exact;
}

TEST(ThresholdWinning, MatchesSimulationSymmetricN5) {
  const Rational beta{3, 5};
  const Rational t{5, 3};
  const SingleThresholdProtocol protocol = SingleThresholdProtocol::symmetric(5, beta);
  const double exact = symmetric_threshold_winning_probability(5, beta, t).to_double();
  prob::Rng rng{9999};
  const sim::SimResult result =
      sim::estimate_winning_probability(protocol, t.to_double(), 400000, rng);
  EXPECT_TRUE(result.covers(exact)) << result.estimate << " vs " << exact;
}

TEST(ThresholdWinning, ComplementSymmetry) {
  // Mirroring the threshold (β → 1 − β) swaps the bins' roles but NOT the
  // conditional input distributions, so P is not generally symmetric; but at
  // β = 1/2 with symmetric capacity the formula must be well defined and
  // bounded.
  for (std::uint32_t n = 2; n <= 6; ++n) {
    const Rational p =
        symmetric_threshold_winning_probability(n, Rational(1, 2), Rational{1});
    EXPECT_GE(p, Rational{0});
    EXPECT_LE(p, Rational{1});
  }
}

TEST(ThresholdWinning, BoundedInZeroOne) {
  for (std::uint32_t n = 1; n <= 6; ++n) {
    for (int b = 0; b <= 10; ++b) {
      for (int i = 1; i <= 8; ++i) {
        const Rational p = symmetric_threshold_winning_probability(
            n, Rational{b, 10}, Rational{i, 4});
        EXPECT_GE(p, Rational{0}) << n << " " << b << " " << i;
        EXPECT_LE(p, Rational{1}) << n << " " << b << " " << i;
      }
    }
  }
}

TEST(ThresholdWinning, GrowsWithCapacity) {
  for (std::uint32_t n = 2; n <= 5; ++n) {
    Rational previous{-1};
    for (int i = 1; i <= 16; ++i) {
      const Rational p = symmetric_threshold_winning_probability(
          n, Rational(3, 5), Rational{i, 4});
      EXPECT_GE(p, previous);
      previous = p;
    }
  }
}

TEST(ThresholdWinning, SaturatesAtLargeCapacity) {
  EXPECT_EQ(symmetric_threshold_winning_probability(4, Rational(1, 2), Rational{4}),
            Rational{1});
  EXPECT_EQ(symmetric_threshold_winning_probability(4, Rational(1, 2), Rational{0}),
            Rational{0});
}

TEST(ThresholdWinning, DoubleMatchesExact) {
  for (std::uint32_t n = 1; n <= 6; ++n) {
    for (int b = 0; b <= 10; ++b) {
      const Rational beta{b, 10};
      for (int i = 1; i <= 6; ++i) {
        const Rational t{i, 3};
        EXPECT_NEAR(
            symmetric_threshold_winning_probability(n, beta.to_double(), t.to_double()),
            symmetric_threshold_winning_probability(n, beta, t).to_double(), 1e-10)
            << n << " " << b << " " << i;
      }
    }
  }
  const std::vector<Rational> a{Rational(3, 5), Rational(1, 2), Rational(7, 10)};
  const std::vector<double> a_d{0.6, 0.5, 0.7};
  for (int i = 1; i <= 6; ++i) {
    const Rational t{i, 3};
    EXPECT_NEAR(threshold_winning_probability(a_d, t.to_double()),
                threshold_winning_probability(a, t).to_double(), 1e-10);
  }
}

TEST(ThresholdWinning, Brackets) {
  // B0_m(0⁺ capacity beyond mβ) and B1_k behave sensibly at the extremes.
  EXPECT_EQ(symmetric_zero_bracket(0, Rational(1, 2), Rational{1}), Rational{1});
  EXPECT_EQ(symmetric_one_bracket(0, Rational(1, 2), Rational{1}), Rational{1});
  // m = 1: B0_1(β) = t − max(t − β, 0); for t = 1, β = 1/2: 1 − 1/2 = 1/2 —
  // the probability weight P(x <= β and x <= t) = β when β <= t.
  EXPECT_EQ(symmetric_zero_bracket(1, Rational(1, 2), Rational{1}), Rational(1, 2));
  // k = 1: B1_1(β) = (1 − β) − max(1 − t − 1 + β, 0) = 1 − β for t = 1.
  EXPECT_EQ(symmetric_one_bracket(1, Rational(1, 2), Rational{1}), Rational(1, 2));
}

TEST(ThresholdWinning, ValidatesInput) {
  EXPECT_THROW((void)threshold_winning_probability(std::vector<Rational>{}, Rational{1}),
               std::invalid_argument);
  EXPECT_THROW((void)threshold_winning_probability(
                   std::vector<Rational>{Rational{2}}, Rational{1}),
               std::invalid_argument);
  EXPECT_THROW((void)symmetric_threshold_winning_probability(0, Rational(1, 2), Rational{1}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)symmetric_threshold_winning_probability(3, Rational{2}, Rational{1}),
      std::invalid_argument);
}

}  // namespace
}  // namespace ddm::core
