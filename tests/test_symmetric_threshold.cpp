// Tests for the symbolic piecewise analysis of Section 5.2 — the module that
// re-derives the paper's case analyses mechanically.
#include "core/symmetric_threshold.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/nonoblivious.hpp"
#include "prob/uniform_sum.hpp"

namespace ddm::core {
namespace {

using poly::QPoly;
using util::Rational;

QPoly make(std::initializer_list<Rational> coeffs_low_first) {
  return QPoly{std::vector<Rational>(coeffs_low_first)};
}

TEST(SymmetricAnalysis, ValidatesInput) {
  EXPECT_THROW((void)SymmetricThresholdAnalysis::build(0, Rational{1}), std::invalid_argument);
  EXPECT_THROW((void)SymmetricThresholdAnalysis::build(3, Rational{0}), std::invalid_argument);
  EXPECT_THROW((void)SymmetricThresholdAnalysis::build(3, Rational{-1}), std::invalid_argument);
}

TEST(SymmetricAnalysis, N3T1BreakpointsMatchPaper) {
  // Section 5.2.1 splits [0, 1] at 1/3 and 1/2.
  const auto analysis = SymmetricThresholdAnalysis::build(3, Rational{1});
  const auto breakpoints = analysis.breakpoints();
  ASSERT_EQ(breakpoints.size(), 4u);
  EXPECT_EQ(breakpoints[0], Rational{0});
  EXPECT_EQ(breakpoints[1], Rational(1, 3));
  EXPECT_EQ(breakpoints[2], Rational(1, 2));
  EXPECT_EQ(breakpoints[3], Rational{1});
}

TEST(SymmetricAnalysis, N3T1PiecePolynomialsMatchPaper) {
  // [0, 1/3] and (1/3, 1/2]: 1/6 + 3/2 β² − 1/2 β³
  // (1/2, 1]:                −11/6 + 9β − 21/2 β² + 7/2 β³.
  const auto analysis = SymmetricThresholdAnalysis::build(3, Rational{1});
  const auto& pieces = analysis.winning_probability().pieces();
  ASSERT_EQ(pieces.size(), 3u);
  const QPoly low = make({Rational(1, 6), Rational{0}, Rational(3, 2), Rational(-1, 2)});
  const QPoly high = make({Rational(-11, 6), Rational{9}, Rational(-21, 2), Rational(7, 2)});
  EXPECT_EQ(pieces[0].poly, low);
  EXPECT_EQ(pieces[1].poly, low);
  EXPECT_EQ(pieces[2].poly, high);
}

TEST(SymmetricAnalysis, N3T1OptimumIsPaperValue) {
  // β* = 1 − sqrt(1/7) ≈ 0.62204, P* ≈ 0.5446 (settling the PY conjecture).
  const auto analysis = SymmetricThresholdAnalysis::build(3, Rational{1});
  const SymmetricOptimum opt = analysis.optimize();
  EXPECT_TRUE(opt.interior);
  EXPECT_EQ(opt.piece_index, 2u);
  EXPECT_NEAR(opt.beta.approx(), 1.0 - std::sqrt(1.0 / 7.0), 1e-15);
  EXPECT_NEAR(opt.value.to_double(), 0.544631, 1e-6);
  // The optimality condition is 9 − 21β + 21/2 β², i.e. (21/2)(β² − 2β + 6/7):
  // exactly the paper's polynomial equation (Section 5.2.1).
  const QPoly expected = make({Rational(6, 7), Rational{-2}, Rational{1}}) * Rational(21, 2);
  EXPECT_EQ(opt.optimality_condition, expected);
  // The optimum satisfies the condition: value changes sign across the
  // isolating interval.
  EXPECT_LE((opt.optimality_condition(opt.beta.lo) * opt.optimality_condition(opt.beta.hi))
                .signum(),
            0);
}

TEST(SymmetricAnalysis, N4T43OptimalityConditionMatchesCorrectedPaper) {
  // Section 5.2.2 (constant sign-corrected): the optimal piece's derivative is
  // proportional to 26/3 β³ − 98/3 β² + 368/9 β − 416/27; root β ≈ 0.678.
  const auto analysis = SymmetricThresholdAnalysis::build(4, Rational(4, 3));
  const SymmetricOptimum opt = analysis.optimize();
  EXPECT_TRUE(opt.interior);
  EXPECT_NEAR(opt.beta.approx(), 0.678, 5e-4);
  const QPoly expected = make({Rational(416, 27), Rational(-368, 9), Rational(98, 3),
                               Rational(-26, 3)});
  // Proportionality check: cross-multiply leading and trailing coefficients.
  const QPoly& got = opt.optimality_condition;
  ASSERT_EQ(got.degree(), expected.degree());
  const Rational scale = got.leading_coefficient() / expected.leading_coefficient();
  EXPECT_EQ(got, expected * scale);
}

TEST(SymmetricAnalysis, OptimaAreCertified) {
  // The interval-arithmetic certification must succeed on every instance we
  // reproduce: the optimum provably dominates all other candidates.
  for (std::uint32_t n = 1; n <= 6; ++n) {
    const Rational t{static_cast<std::int64_t>(n), 3};
    EXPECT_TRUE(SymmetricThresholdAnalysis::build(n, t).optimize().certified) << "n=" << n;
  }
  EXPECT_TRUE(SymmetricThresholdAnalysis::build(3, Rational{1}).optimize().certified);
  EXPECT_TRUE(SymmetricThresholdAnalysis::build(4, Rational(4, 3)).optimize().certified);
}

TEST(SymmetricAnalysis, ContinuityForManyInstances) {
  for (std::uint32_t n = 1; n <= 7; ++n) {
    for (const Rational& t : {Rational{1}, Rational{static_cast<std::int64_t>(n), 3},
                              Rational(3, 4), Rational{2}}) {
      const auto analysis = SymmetricThresholdAnalysis::build(n, t);
      EXPECT_TRUE(analysis.winning_probability().is_continuous())
          << "n=" << n << " t=" << t;
    }
  }
}

TEST(SymmetricAnalysis, AgreesWithDirectEvaluationEverywhere) {
  // The symbolic pieces must reproduce the numeric Theorem 5.1 evaluator at
  // every rational probe (this pins the piecewise construction).
  for (std::uint32_t n = 1; n <= 6; ++n) {
    for (const Rational& t :
         {Rational{1}, Rational{static_cast<std::int64_t>(n), 3}, Rational(5, 4)}) {
      const auto analysis = SymmetricThresholdAnalysis::build(n, t);
      for (int i = 0; i <= 24; ++i) {
        const Rational beta{i, 24};
        EXPECT_EQ(analysis.winning_probability()(beta),
                  symmetric_threshold_winning_probability(n, beta, t))
            << "n=" << n << " t=" << t << " beta=" << beta;
      }
    }
  }
}

TEST(SymmetricAnalysis, EndpointValuesAreIrwinHall) {
  // β = 0 (all bin 1) and β = 1 (all bin 0) both give IH_n(t).
  for (std::uint32_t n = 2; n <= 6; ++n) {
    const Rational t{static_cast<std::int64_t>(n), 3};
    const auto analysis = SymmetricThresholdAnalysis::build(n, t);
    const Rational expected = prob::irwin_hall_cdf(n, t);
    EXPECT_EQ(analysis.winning_probability()(Rational{0}), expected);
    EXPECT_EQ(analysis.winning_probability()(Rational{1}), expected);
  }
}

TEST(SymmetricAnalysis, OptimaDifferAcrossN) {
  // The heart of Section 5.2: the optimal threshold depends on n (with
  // capacity scaled as t = n/3), so no uniform optimal protocol exists.
  const auto opt3 = SymmetricThresholdAnalysis::build(3, Rational{1}).optimize();
  const auto opt4 = SymmetricThresholdAnalysis::build(4, Rational(4, 3)).optimize();
  const auto opt5 = SymmetricThresholdAnalysis::build(5, Rational(5, 3)).optimize();
  const Rational gap43 = (opt4.beta.midpoint() - opt3.beta.midpoint()).abs();
  const Rational gap54 = (opt5.beta.midpoint() - opt4.beta.midpoint()).abs();
  EXPECT_GT(gap43, Rational(1, 100));
  EXPECT_GT(gap54, Rational(1, 1000));
}

TEST(SymmetricAnalysis, OptimumBeatsEveryGridProbe) {
  for (std::uint32_t n : {3u, 4u, 5u}) {
    const Rational t{static_cast<std::int64_t>(n), 3};
    const auto analysis = SymmetricThresholdAnalysis::build(n, t);
    const SymmetricOptimum opt = analysis.optimize();
    for (int i = 0; i <= 50; ++i) {
      const Rational beta{i, 50};
      const Rational slack{1, 1000000000000};
      EXPECT_GE(opt.value + slack, analysis.winning_probability()(beta))
          << "n=" << n << " beta=" << beta;
    }
  }
}

TEST(SymmetricAnalysis, N1HasNoInteriorStructure) {
  // One player, t >= 1: wins always; P ≡ 1 on [0,1].
  const auto analysis = SymmetricThresholdAnalysis::build(1, Rational{1});
  for (int i = 0; i <= 10; ++i) {
    EXPECT_EQ(analysis.winning_probability()(Rational{i, 10}), Rational{1});
  }
}

TEST(SymmetricAnalysis, LargeCapacityGivesConstantOne) {
  const auto analysis = SymmetricThresholdAnalysis::build(4, Rational{5});
  for (int i = 0; i <= 10; ++i) {
    EXPECT_EQ(analysis.winning_probability()(Rational{i, 10}), Rational{1});
  }
  const SymmetricOptimum opt = analysis.optimize();
  EXPECT_EQ(opt.value, Rational{1});
}

}  // namespace
}  // namespace ddm::core
