// engine::CostModel — the profile-guided dispatch policy (engine/cost_model.hpp).
//
// Three contracts are pinned here:
//
//   1. The TABLE contract: save/load round-trips every cell, and every
//      corruption — truncation, flipped bytes, forged structure, a stale
//      format version — surfaces as a typed ddm::PolicyError naming the
//      knob that pointed at the file. A wrong table is never consulted.
//   2. The TOLERANCE contract (the property test): a loaded model may change
//      WHICH engine `auto` dispatches to, but never hands a request to the
//      compiled plan unless its certificate clears the REQUEST tolerance —
//      even under an adversarial table that lies about compiled being free.
//      The interchangeable-value double kernels (batch, kernel) are always
//      admissible, so that is the whole accuracy surface.
//   3. The DEGRADATION contract: a sparse or irrelevant table falls back to
//      exactly the static rule's choice, and forced engines bypass the
//      model entirely.
#include "engine/cost_model.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "engine/evaluator.hpp"
#include "engine/plan_cache.hpp"
#include "engine/policy.hpp"
#include "engine/registry.hpp"
#include "poly/plan_store.hpp"
#include "util/rational.hpp"
#include "util/status.hpp"

namespace ddm::engine {
namespace {

using util::Rational;

class PolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-suffixed like PlanStoreTest: the DDM_THREADS-pinned whole-suite
    // registrations run concurrently with the discovered per-test processes.
    dir_ = ::testing::TempDir() + "ddm_policy_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
           std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    CostModel::set_configured(nullptr);
  }

  void TearDown() override {
    CostModel::set_configured(nullptr);
    std::filesystem::remove_all(dir_);
  }

  [[nodiscard]] std::string path(const std::string& name) const { return dir_ + "/" + name; }

  // Writes `body` with a correct checksum trailer — the only way to reach
  // the structural validators behind the checksum gate.
  [[nodiscard]] std::string write_table(const std::string& name, const std::string& body) const {
    const std::uint64_t checksum = poly::plan_store_checksum(body.data(), body.size());
    std::ostringstream trailer;
    trailer << "checksum " << std::hex << std::setw(16) << std::setfill('0') << checksum << "\n";
    const std::string file = path(name);
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out << body << trailer.str();
    return file;
  }

  std::string dir_;
};

[[nodiscard]] EvalRequest sweep(std::uint32_t n, Rational t, std::size_t points,
                                Rational tolerance) {
  std::vector<double> betas(points);
  for (std::size_t k = 0; k < points; ++k) {
    betas[k] = 0.2 + 0.6 * static_cast<double>(k + 1) / static_cast<double>(points + 1);
  }
  EvalRequest request = EvalRequest::symmetric(n, std::move(t), std::move(betas));
  request.tolerance = std::move(tolerance);
  return request;
}

// --- table round-trip ----------------------------------------------------

TEST_F(PolicyTest, RoundTripPreservesCellsAndPredictions) {
  CostModel model;
  model.set_cell("compiled", 4, 16, 3.5e-9);
  model.set_cell("compiled", 4, 256, 2.5e-9);
  model.set_cell("compiled", 12, 16, 6.0e-9);
  model.set_cell("compiled", 12, 256, 4.0e-9);
  model.set_cell("batch", 8, 64, 1.25e-6);
  model.save(path("table.ddmpolicy"));

  const auto loaded = CostModel::load(path("table.ddmpolicy"), "--policy");
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->cell_count(), model.cell_count());
  const std::vector<CostCell> expected = model.cells();
  const std::vector<CostCell> actual = loaded->cells();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].engine, expected[i].engine);
    EXPECT_EQ(actual[i].n, expected[i].n);
    EXPECT_EQ(actual[i].batch, expected[i].batch);
    EXPECT_EQ(actual[i].seconds_per_point, expected[i].seconds_per_point);
  }
  for (const std::uint32_t n : {1u, 4u, 7u, 12u, 20u}) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{64}, std::size_t{4096}}) {
      EXPECT_DOUBLE_EQ(loaded->predict("compiled", n, batch), model.predict("compiled", n, batch));
      EXPECT_DOUBLE_EQ(loaded->predict("batch", n, batch), model.predict("batch", n, batch));
    }
  }
}

TEST_F(PolicyTest, PredictInterpolatesWithinAndClampsOutsideTheGrid) {
  CostModel model;
  model.set_cell("compiled", 4, 16, 1.0e-9);
  model.set_cell("compiled", 4, 256, 2.0e-9);
  model.set_cell("compiled", 16, 16, 4.0e-9);
  model.set_cell("compiled", 16, 256, 8.0e-9);
  // Interior: between the corner values (geometric interpolation).
  const double interior = model.predict("compiled", 8, 64);
  EXPECT_GT(interior, 1.0e-9);
  EXPECT_LT(interior, 8.0e-9);
  // Grid points: exact.
  EXPECT_DOUBLE_EQ(model.predict("compiled", 4, 16), 1.0e-9);
  EXPECT_DOUBLE_EQ(model.predict("compiled", 16, 256), 8.0e-9);
  // Outside: clamped to the nearest edge, never extrapolated.
  EXPECT_DOUBLE_EQ(model.predict("compiled", 1, 1), 1.0e-9);
  EXPECT_DOUBLE_EQ(model.predict("compiled", 20, 100000), 8.0e-9);
  // Unknown engine: +infinity (drops out of candidacy).
  EXPECT_TRUE(std::isinf(model.predict("certified", 8, 64)));
}

TEST_F(PolicyTest, CheapestMatchesPredictArgmin) {
  std::mt19937 rng(20260808);
  std::uniform_real_distribution<double> log_cost(-22.0, -4.0);
  std::uniform_int_distribution<std::uint32_t> pick_n(1, 16);
  const std::string_view ids[3] = {"compiled", "batch", "kernel"};
  for (int round = 0; round < 32; ++round) {
    CostModel model;
    for (const std::string_view engine : ids) {
      if (rng() % 4 == 0) continue;  // leave some engines unmeasured
      for (const std::uint32_t n : {2u, 8u, 14u}) {
        for (const std::uint32_t batch : {16u, 512u}) {
          model.set_cell(std::string(engine), n, batch, std::exp(log_cost(rng)));
        }
      }
    }
    for (int probe = 0; probe < 8; ++probe) {
      const std::uint32_t n = pick_n(rng);
      const std::size_t batch = std::size_t{1} << (rng() % 13);
      std::size_t expected = 3;
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < 3; ++i) {
        const double predicted = model.predict(ids[i], n, batch);
        if (predicted < best) {
          best = predicted;
          expected = i;
        }
      }
      EXPECT_EQ(model.cheapest(ids, 3, n, batch), expected)
          << "n=" << n << " batch=" << batch << " round=" << round;
    }
  }
}

TEST_F(PolicyTest, ObserveCreatesRefinesAndDropsBadSamples) {
  CostModel model;
  model.observe("batch", 8, 256, 1.0e-6);
  EXPECT_EQ(model.cell_count(), 1u);
  const double created = model.predict("batch", 8, 256);
  EXPECT_DOUBLE_EQ(created, 1.0e-6);
  // EWMA refinement converges toward a persistent shift.
  for (int i = 0; i < 64; ++i) model.observe("batch", 8, 256, 4.0e-6);
  const double refined = model.predict("batch", 8, 256);
  EXPECT_GT(refined, 3.5e-6);
  EXPECT_LT(refined, 4.5e-6);
  // Bad samples (non-positive, non-finite) are dropped, not folded in.
  model.observe("batch", 8, 256, 0.0);
  model.observe("batch", 8, 256, -1.0);
  model.observe("batch", 8, 256, std::numeric_limits<double>::quiet_NaN());
  EXPECT_DOUBLE_EQ(model.predict("batch", 8, 256), refined);
}

// --- rejection matrix ----------------------------------------------------

TEST_F(PolicyTest, TruncatedFileIsRejected) {
  CostModel model;
  model.set_cell("compiled", 4, 16, 1.0e-9);
  model.save(path("table.ddmpolicy"));
  std::string text;
  {
    std::ifstream in(path("table.ddmpolicy"), std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  std::ofstream(path("truncated.ddmpolicy"), std::ios::binary)
      << text.substr(0, text.size() / 2);
  try {
    (void)CostModel::load(path("truncated.ddmpolicy"), "DDM_POLICY");
    FAIL() << "truncated table loaded";
  } catch (const PolicyError& error) {
    EXPECT_FALSE(error.stale());
    EXPECT_EQ(error.source(), "DDM_POLICY");
    EXPECT_NE(std::string(error.what()).find("DDM_POLICY"), std::string::npos);
  }
}

TEST_F(PolicyTest, FlippedByteIsRejectedByChecksum) {
  CostModel model;
  model.set_cell("compiled", 4, 16, 1.0e-9);
  model.save(path("table.ddmpolicy"));
  std::string text;
  {
    std::ifstream in(path("table.ddmpolicy"), std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  const std::size_t at = text.find("cell compiled 4");
  ASSERT_NE(at, std::string::npos);
  text[at + 14] = '7';  // 4 -> 7: a plausible but wrong cell
  std::ofstream(path("flipped.ddmpolicy"), std::ios::binary) << text;
  try {
    (void)CostModel::load(path("flipped.ddmpolicy"), "--policy");
    FAIL() << "corrupt table loaded";
  } catch (const PolicyError& error) {
    EXPECT_FALSE(error.stale());
    EXPECT_NE(std::string(error.what()).find("checksum mismatch"), std::string::npos);
  }
}

TEST_F(PolicyTest, FutureFormatVersionIsRejectedAsStale) {
  // A version bump with a RECOMPUTED checksum: the only way to reach the
  // version validator (a sed-style edit breaks the checksum first).
  const std::string file = write_table(
      "future.ddmpolicy", "ddmpolicy v2\norigin calibrate\ncell compiled 4 16 1e-09\n");
  try {
    (void)CostModel::load(file, "--policy-table");
    FAIL() << "future-version table loaded";
  } catch (const PolicyError& error) {
    EXPECT_TRUE(error.stale());
    EXPECT_EQ(error.source(), "--policy-table");
    EXPECT_NE(std::string(error.what()).find("format version 2"), std::string::npos);
  }
}

TEST_F(PolicyTest, StructuralGarbageIsRejected) {
  // Each body carries a VALID checksum, so the structural validators are the
  // ones doing the rejecting.
  const struct {
    const char* name;
    const char* body;
  } cases[] = {
      {"magic", "ddmplans v1\ncell compiled 4 16 1e-09\n"},
      {"version", "ddmpolicy vX\ncell compiled 4 16 1e-09\n"},
      {"empty", "ddmpolicy v1\norigin calibrate\n"},
      {"zero_n", "ddmpolicy v1\ncell compiled 0 16 1e-09\n"},
      {"negative", "ddmpolicy v1\ncell compiled 4 16 -1e-09\n"},
      {"unknown", "ddmpolicy v1\nrow compiled 4 16 1e-09\n"},
      {"trailing", "ddmpolicy v1\ncell compiled 4 16 1e-09 extra\n"},
      {"duplicate", "ddmpolicy v1\ncell compiled 4 16 1e-09\ncell compiled 4 16 2e-09\n"},
  };
  for (const auto& test_case : cases) {
    const std::string file =
        write_table(std::string(test_case.name) + ".ddmpolicy", test_case.body);
    EXPECT_THROW((void)CostModel::load(file, "--policy"), PolicyError) << test_case.name;
  }
}

// --- the tolerance contract (property test) ------------------------------

// Random tables — including engines the table lies about — may reroute the
// auto rule between compiled / batch / kernel, but a request is handed to
// the compiled plan ONLY when the plan's certificate clears the request
// tolerance. Every chosen engine must support the request.
TEST_F(PolicyTest, ModelNeverViolatesTheToleranceContract) {
  std::mt19937 rng(990817);
  std::uniform_real_distribution<double> log_cost(-24.0, -2.0);
  const Rational tolerances[] = {Rational{1, 1000000000000}, Rational{1, 1000000000},
                                 Rational{1, 1000000}, Rational{1, 1000}};
  const char* candidates[] = {"compiled", "batch", "kernel"};
  for (int round = 0; round < 40; ++round) {
    auto model = std::make_shared<CostModel>();
    for (const char* engine : candidates) {
      if (rng() % 5 == 0) continue;  // sparse tables are legal
      for (const std::uint32_t n : {2u, 6u, 10u, 14u}) {
        for (const std::uint32_t batch : {8u, 128u, 2048u}) {
          model->set_cell(engine, n, batch, std::exp(log_cost(rng)));
        }
      }
    }
    CostModel::set_configured(model);

    const std::uint32_t n = 1 + rng() % 14;
    const Rational t{n, 3};
    const Rational& tolerance = tolerances[rng() % 4];
    const EvalRequest request = sweep(n, t, 1 + rng() % 64, tolerance);
    const Selection selection = select(EnginePolicy{}, request);

    ASSERT_NE(selection.evaluator, nullptr);
    // A round can roll an entirely empty table; select() then stays on the
    // static branch and never consults the model at all.
    EXPECT_EQ(selection.model_consulted, !model->empty());
    EXPECT_TRUE(selection.evaluator->supports(request));
    const std::string id(selection.evaluator->id());
    EXPECT_TRUE(id == "compiled" || id == "batch" || id == "kernel") << id;
    if (id == "compiled") {
      const auto plan = PlanCache::instance().get_or_lower(request.n, request.t);
      EXPECT_LE(plan->max_error_bound(), request.tolerance.to_double())
          << "round " << round << ": compiled chosen past the request tolerance";
    }
  }
}

TEST_F(PolicyTest, AdversarialTableCannotForceCompiledPastTolerance) {
  // The table claims compiled is essentially free everywhere — but at
  // n = 10, t = 10/3 the plan certificate is ~5e-8, so a 1e-9 request
  // tolerance must still exclude it.
  auto liar = std::make_shared<CostModel>();
  for (const std::uint32_t n : {1u, 8u, 16u}) {
    for (const std::uint32_t batch : {1u, 4096u}) {
      liar->set_cell("compiled", n, batch, 1.0e-15);
      liar->set_cell("batch", n, batch, 1.0);
      liar->set_cell("kernel", n, batch, 1.0);
    }
  }
  CostModel::set_configured(liar);
  const EvalRequest request = sweep(10, Rational{10, 3}, 16, Rational{1, 1000000000});
  const Selection selection = select(EnginePolicy{}, request);
  ASSERT_NE(selection.evaluator, nullptr);
  EXPECT_NE(selection.evaluator->id(), "compiled");
  EXPECT_TRUE(selection.fallback);
  EXPECT_NE(selection.note.find("certificate"), std::string::npos);

  // Relaxing the tolerance readmits compiled, and the lying table picks it.
  const EvalRequest relaxed = sweep(10, Rational{10, 3}, 16, Rational{1, 1000});
  const Selection reselect = select(EnginePolicy{}, relaxed);
  EXPECT_EQ(reselect.evaluator->id(), "compiled");
}

// --- degradation and bypass ----------------------------------------------

TEST_F(PolicyTest, SparseTableDegradesToTheStaticChoice) {
  // Cells only for an engine that is never an auto candidate: every
  // candidate predicts +infinity and the choice is the static rule's.
  auto irrelevant = std::make_shared<CostModel>();
  irrelevant->set_cell("mc", 4, 16, 1.0e-9);
  const EvalRequest request = sweep(4, Rational{4, 3}, 8, Rational{1, 1000000000});
  CostModel::set_configured(nullptr);
  const Selection statically = select(EnginePolicy{}, request);
  CostModel::set_configured(irrelevant);
  const Selection modeled = select(EnginePolicy{}, request);
  EXPECT_TRUE(modeled.model_consulted);
  EXPECT_FALSE(statically.model_consulted);
  EXPECT_EQ(modeled.evaluator, statically.evaluator);
}

TEST_F(PolicyTest, ForcedEnginesBypassTheModel) {
  auto liar = std::make_shared<CostModel>();
  liar->set_cell("compiled", 6, 16, 1.0e-15);
  CostModel::set_configured(liar);
  EnginePolicy policy;
  policy.engine = "kernel";
  const Selection selection = select(policy, sweep(6, Rational{2}, 8, Rational{1, 1000000000}));
  EXPECT_EQ(selection.evaluator->id(), "kernel");
  EXPECT_FALSE(selection.model_consulted);
}

TEST_F(PolicyTest, UnconfiguredSelectKeepsTheStaticRule) {
  CostModel::set_configured(nullptr);
  const Selection selection = select(EnginePolicy{}, sweep(4, Rational{4, 3}, 8,
                                                           Rational{1, 1000000000}));
  EXPECT_FALSE(selection.model_consulted);
  EXPECT_EQ(selection.evaluator->id(), "compiled");
}

}  // namespace
}  // namespace ddm::engine
