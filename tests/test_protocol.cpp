// Tests for the decision-protocol model of Section 3.
#include "core/protocol.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ddm::core {
namespace {

using util::Rational;

TEST(ObliviousProtocol, ValidatesProbabilityVector) {
  EXPECT_THROW((ObliviousProtocol{std::vector<Rational>{}}), std::invalid_argument);
  EXPECT_THROW((ObliviousProtocol{std::vector<Rational>{Rational{2}}}), std::invalid_argument);
  EXPECT_THROW((ObliviousProtocol{std::vector<Rational>{Rational{-1, 2}}}),
               std::invalid_argument);
  EXPECT_NO_THROW((ObliviousProtocol{std::vector<Rational>{Rational{0}, Rational{1}}}));
}

TEST(ObliviousProtocol, UniformFactory) {
  const ObliviousProtocol protocol = ObliviousProtocol::uniform(4);
  EXPECT_EQ(protocol.size(), 4u);
  for (const Rational& a : protocol.alpha()) EXPECT_EQ(a, Rational(1, 2));
}

TEST(ObliviousProtocol, DegenerateProbabilitiesAreDeterministic) {
  const ObliviousProtocol protocol{
      std::vector<Rational>{Rational{1}, Rational{0}}};
  prob::Rng rng{5};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(protocol.decide(0, 0.3, rng), kBin0);  // α = 1 → always bin 0
    EXPECT_EQ(protocol.decide(1, 0.3, rng), kBin1);  // α = 0 → always bin 1
  }
}

TEST(ObliviousProtocol, IgnoresInput) {
  const ObliviousProtocol protocol{std::vector<Rational>{Rational{1}}};
  prob::Rng rng{5};
  EXPECT_EQ(protocol.decide(0, 0.0, rng), protocol.decide(0, 1.0, rng));
}

TEST(ObliviousProtocol, FrequencyMatchesAlpha) {
  const ObliviousProtocol protocol{std::vector<Rational>{Rational(1, 4)}};
  prob::Rng rng{17};
  int zeros = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (protocol.decide(0, 0.5, rng) == kBin0) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / n, 0.25, 0.01);
}

TEST(ObliviousProtocol, OutOfRangePlayerThrows) {
  const ObliviousProtocol protocol = ObliviousProtocol::uniform(2);
  prob::Rng rng{1};
  EXPECT_THROW((void)protocol.decide(2, 0.5, rng), std::out_of_range);
}

TEST(ObliviousProtocol, NameMentionsAlpha) {
  const ObliviousProtocol protocol = ObliviousProtocol::uniform(2);
  EXPECT_NE(protocol.name().find("1/2"), std::string::npos);
}

TEST(SingleThresholdProtocol, DecidesByThreshold) {
  const SingleThresholdProtocol protocol{std::vector<Rational>{Rational(1, 2), Rational(1, 4)}};
  prob::Rng rng{1};
  EXPECT_EQ(protocol.decide(0, 0.49, rng), kBin0);
  EXPECT_EQ(protocol.decide(0, 0.5, rng), kBin0);   // boundary: x <= a → bin 0
  EXPECT_EQ(protocol.decide(0, 0.51, rng), kBin1);
  EXPECT_EQ(protocol.decide(1, 0.3, rng), kBin1);
  EXPECT_EQ(protocol.decide(1, 0.2, rng), kBin0);
}

TEST(SingleThresholdProtocol, SymmetricFactory) {
  const SingleThresholdProtocol protocol =
      SingleThresholdProtocol::symmetric(5, Rational(2, 3));
  EXPECT_EQ(protocol.size(), 5u);
  for (const Rational& a : protocol.thresholds()) EXPECT_EQ(a, Rational(2, 3));
}

TEST(SingleThresholdProtocol, Validation) {
  EXPECT_THROW((SingleThresholdProtocol{std::vector<Rational>{}}), std::invalid_argument);
  EXPECT_THROW((SingleThresholdProtocol{std::vector<Rational>{Rational{3, 2}}}),
               std::invalid_argument);
}

TEST(FunctorProtocol, CallsPerPlayerRule) {
  std::vector<FunctorProtocol::Rule> rules;
  rules.push_back([](double, prob::Rng&) { return kBin0; });
  rules.push_back([](double x, prob::Rng&) { return x > 0.5 ? kBin1 : kBin0; });
  const FunctorProtocol protocol{std::move(rules), "test"};
  prob::Rng rng{1};
  EXPECT_EQ(protocol.decide(0, 0.9, rng), kBin0);
  EXPECT_EQ(protocol.decide(1, 0.9, rng), kBin1);
  EXPECT_EQ(protocol.decide(1, 0.1, rng), kBin0);
  EXPECT_EQ(protocol.name(), "test");
}

TEST(FunctorProtocol, Validation) {
  EXPECT_THROW(FunctorProtocol({}, "empty"), std::invalid_argument);
  std::vector<FunctorProtocol::Rule> rules{FunctorProtocol::Rule{}};
  EXPECT_THROW(FunctorProtocol(std::move(rules), "null rule"), std::invalid_argument);
}

TEST(Play, AccumulatesBinLoads) {
  const SingleThresholdProtocol protocol =
      SingleThresholdProtocol::symmetric(3, Rational(1, 2));
  prob::Rng rng{1};
  const std::vector<double> inputs{0.2, 0.7, 0.4};
  const BinLoads loads = play(protocol, inputs, rng);
  EXPECT_DOUBLE_EQ(loads.bin0, 0.2 + 0.4);
  EXPECT_DOUBLE_EQ(loads.bin1, 0.7);
}

TEST(Play, SizeMismatchThrows) {
  const SingleThresholdProtocol protocol =
      SingleThresholdProtocol::symmetric(3, Rational(1, 2));
  prob::Rng rng{1};
  EXPECT_THROW((void)play(protocol, std::vector<double>{0.1}, rng), std::invalid_argument);
}

TEST(Wins, ChecksBothBins) {
  const SingleThresholdProtocol protocol =
      SingleThresholdProtocol::symmetric(3, Rational(1, 2));
  prob::Rng rng{1};
  EXPECT_TRUE(wins(protocol, std::vector<double>{0.2, 0.7, 0.4}, 1.0, rng));
  // bin0 load 0.9 > 0.8 → overflow at t = 0.8? bin0 = 0.6, bin1 = 0.7: wins.
  EXPECT_TRUE(wins(protocol, std::vector<double>{0.2, 0.7, 0.4}, 0.8, rng));
  // t = 0.5: bin0 = 0.6 overflows.
  EXPECT_FALSE(wins(protocol, std::vector<double>{0.2, 0.7, 0.4}, 0.5, rng));
}

TEST(Wins, BoundaryIsInclusive) {
  const SingleThresholdProtocol protocol =
      SingleThresholdProtocol::symmetric(2, Rational(1, 2));
  prob::Rng rng{1};
  // 0.5 -> bin 0, 0.6 -> bin 1; loads exactly equal to t count as no
  // overflow (Σ_b <= t).
  EXPECT_TRUE(wins(protocol, std::vector<double>{0.5, 0.6}, 0.6, rng));
  EXPECT_FALSE(wins(protocol, std::vector<double>{0.5, 0.6}, 0.59, rng));
}

}  // namespace
}  // namespace ddm::core
