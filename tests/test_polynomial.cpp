// Tests for poly::Polynomial over Rational and double.
#include "poly/polynomial.hpp"

#include <gtest/gtest.h>

#include <random>

namespace ddm::poly {
namespace {

using util::Rational;

QPoly make(std::initializer_list<std::int64_t> coeffs_low_first) {
  std::vector<Rational> coeffs;
  for (const std::int64_t c : coeffs_low_first) coeffs.emplace_back(c);
  return QPoly{std::move(coeffs)};
}

TEST(Polynomial, ZeroPolynomial) {
  const QPoly zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.degree(), -1);
  EXPECT_EQ(zero(Rational{5}), Rational{0});
  EXPECT_EQ(zero.to_string(), "0");
}

TEST(Polynomial, TrimsLeadingZeros) {
  const QPoly p{std::vector<Rational>{Rational{1}, Rational{2}, Rational{0}, Rational{0}}};
  EXPECT_EQ(p.degree(), 1);
}

TEST(Polynomial, ConstantAndMonomial) {
  EXPECT_EQ(QPoly{Rational{7}}.degree(), 0);
  EXPECT_EQ(QPoly::x().degree(), 1);
  const QPoly m = QPoly::monomial(Rational{3}, 4);
  EXPECT_EQ(m.degree(), 4);
  EXPECT_EQ(m.coefficient(4), Rational{3});
  EXPECT_EQ(m.coefficient(2), Rational{0});
}

TEST(Polynomial, HornerEvaluation) {
  const QPoly p = make({-11, 9, -10, 3});  // 3x³ − 10x² + 9x − 11
  EXPECT_EQ(p(Rational{0}), Rational{-11});
  EXPECT_EQ(p(Rational{1}), Rational{-9});
  EXPECT_EQ(p(Rational{2}), Rational{-9});
  EXPECT_EQ(p(Rational(1, 2)), Rational{1} * Rational(3, 8) - Rational{10} * Rational(1, 4) +
                                   Rational(9, 2) - Rational{11});
}

TEST(Polynomial, Addition) {
  EXPECT_EQ(make({1, 2}) + make({3, 4, 5}), make({4, 6, 5}));
  EXPECT_EQ(make({1, 2}) + make({-1, -2}), QPoly{});
}

TEST(Polynomial, Subtraction) {
  EXPECT_EQ(make({5, 5, 5}) - make({1, 2, 3}), make({4, 3, 2}));
  EXPECT_EQ(make({1, 0, 3}) - make({1, 0, 3}), QPoly{});
}

TEST(Polynomial, Multiplication) {
  // (x + 1)(x − 1) = x² − 1
  EXPECT_EQ(make({1, 1}) * make({-1, 1}), make({-1, 0, 1}));
  // (x + 2)² = x² + 4x + 4
  EXPECT_EQ(make({2, 1}) * make({2, 1}), make({4, 4, 1}));
  EXPECT_EQ(make({1, 2, 3}) * QPoly{}, QPoly{});
}

TEST(Polynomial, ScalarOperations) {
  QPoly p = make({1, 2, 3});
  p *= Rational{2};
  EXPECT_EQ(p, make({2, 4, 6}));
  p /= Rational{2};
  EXPECT_EQ(p, make({1, 2, 3}));
  EXPECT_EQ(Rational{0} * make({1, 2}), QPoly{});
}

TEST(Polynomial, Negation) { EXPECT_EQ(-make({1, -2, 3}), make({-1, 2, -3})); }

TEST(Polynomial, Derivative) {
  // d/dx (7/2 x³ − 21/2 x² + 9x − 11/6) = 21/2 x² − 21x + 9 (the paper's n=3
  // optimality condition, Section 5.2.1).
  const QPoly piece{std::vector<Rational>{Rational(-11, 6), Rational{9}, Rational(-21, 2),
                                          Rational(7, 2)}};
  const QPoly expected{std::vector<Rational>{Rational{9}, Rational{-21}, Rational(21, 2)}};
  EXPECT_EQ(piece.derivative(), expected);
  EXPECT_EQ(QPoly{Rational{5}}.derivative(), QPoly{});
  EXPECT_EQ(QPoly{}.derivative(), QPoly{});
}

TEST(Polynomial, AntiderivativeInvertsDerivative) {
  const QPoly p = make({4, -6, 12});
  EXPECT_EQ(p.antiderivative().derivative(), p);
  EXPECT_EQ(p.antiderivative()(Rational{0}), Rational{0});
}

TEST(Polynomial, Compose) {
  // p(x) = x² + 1 composed with q(x) = x − 2: (x−2)² + 1 = x² − 4x + 5.
  EXPECT_EQ(make({1, 0, 1}).compose(make({-2, 1})), make({5, -4, 1}));
  // Compose with constant evaluates the polynomial.
  EXPECT_EQ(make({1, 2, 3}).compose(QPoly{Rational{2}}), QPoly{Rational{17}});
}

TEST(Polynomial, Pow) {
  EXPECT_EQ(make({1, 1}).pow(2), make({1, 2, 1}));
  EXPECT_EQ(make({1, 1}).pow(0), QPoly{Rational{1}});
  EXPECT_EQ(make({0, 1}).pow(5), QPoly::monomial(Rational{1}, 5));
}

TEST(Polynomial, DivMod) {
  // x³ − 1 = (x − 1)(x² + x + 1)
  const auto [q, r] = QPoly::div_mod(make({-1, 0, 0, 1}), make({-1, 1}));
  EXPECT_EQ(q, make({1, 1, 1}));
  EXPECT_TRUE(r.is_zero());
  // x² + 1 divided by x + 1 → quotient x − 1, remainder 2.
  const auto [q2, r2] = QPoly::div_mod(make({1, 0, 1}), make({1, 1}));
  EXPECT_EQ(q2, make({-1, 1}));
  EXPECT_EQ(r2, QPoly{Rational{2}});
}

TEST(Polynomial, DivModByZeroThrows) {
  EXPECT_THROW(QPoly::div_mod(make({1, 1}), QPoly{}), std::domain_error);
}

TEST(Polynomial, DivModIdentityRandomized) {
  std::mt19937_64 gen{4242};
  const auto random_poly = [&gen](int max_degree) {
    std::vector<Rational> coeffs;
    const int degree = static_cast<int>(gen() % (max_degree + 1));
    for (int i = 0; i <= degree; ++i) {
      coeffs.emplace_back(static_cast<std::int64_t>(gen() % 21) - 10,
                          1 + static_cast<std::int64_t>(gen() % 5));
    }
    return QPoly{std::move(coeffs)};
  };
  for (int iter = 0; iter < 100; ++iter) {
    const QPoly a = random_poly(8);
    QPoly b = random_poly(4);
    if (b.is_zero()) b = QPoly{Rational{1}};
    const auto [q, r] = QPoly::div_mod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.degree(), b.degree() == -1 ? 0 : b.degree());
  }
}

TEST(Polynomial, Gcd) {
  // gcd((x−1)(x−2), (x−1)(x−3)) = x − 1 (monic).
  const QPoly a = make({-1, 1}) * make({-2, 1});
  const QPoly b = make({-1, 1}) * make({-3, 1});
  EXPECT_EQ(QPoly::gcd(a, b), make({-1, 1}));
  // Coprime inputs give gcd 1.
  EXPECT_EQ(QPoly::gcd(make({-1, 1}), make({-2, 1})), QPoly{Rational{1}});
  EXPECT_EQ(QPoly::gcd(QPoly{}, QPoly{}), QPoly{});
  EXPECT_EQ(QPoly::gcd(a, QPoly{}), a * Rational{1});  // gcd(a, 0) = monic a
}

TEST(Polynomial, SquareFreePart) {
  // (x−1)²(x−2) → (x−1)(x−2) up to scaling.
  const QPoly p = make({-1, 1}) * make({-1, 1}) * make({-2, 1});
  const QPoly sf = p.square_free_part();
  EXPECT_EQ(sf.degree(), 2);
  EXPECT_EQ(sf(Rational{1}), Rational{0});
  EXPECT_EQ(sf(Rational{2}), Rational{0});
  // Already square-free input is returned unchanged.
  const QPoly q = make({-2, 0, 1});
  EXPECT_EQ(q.square_free_part(), q);
}

TEST(Polynomial, ToString) {
  EXPECT_EQ(make({-11, 9, 0, 7}).to_string(), "7*x^3 + 9*x - 11");
  EXPECT_EQ(make({0, 1}).to_string(), "x");
  EXPECT_EQ(make({0, -1}).to_string(), "-x");
  EXPECT_EQ(make({2}).to_string(), "2");
  const QPoly p{std::vector<Rational>{Rational(1, 6), Rational{0}, Rational(3, 2),
                                      Rational(-1, 2)}};
  EXPECT_EQ(p.to_string("b"), "-1/2*b^3 + 3/2*b^2 + 1/6");
}

TEST(Polynomial, BinomialPower) {
  // (1 − 2x)³ = 1 − 6x + 12x² − 8x³
  EXPECT_EQ(binomial_power(Rational{1}, Rational{-2}, 3), make({1, -6, 12, -8}));
  EXPECT_EQ(binomial_power(Rational{0}, Rational{1}, 2), make({0, 0, 1}));
  EXPECT_EQ(binomial_power(Rational(4, 3), Rational{0}, 2),
            QPoly{Rational(16, 9)});
  EXPECT_EQ(binomial_power(Rational{5}, Rational{3}, 0), QPoly{Rational{1}});
}

TEST(Polynomial, ToDoubleShadow) {
  const QPoly p = make({1, -3, 2});
  const DPoly d = to_double(p);
  EXPECT_DOUBLE_EQ(d(0.5), p(Rational(1, 2)).to_double());
  EXPECT_DOUBLE_EQ(d(2.0), 3.0);
}

TEST(Polynomial, DoubleInstantiation) {
  const DPoly p{std::vector<double>{1.0, 2.0, 1.0}};
  EXPECT_DOUBLE_EQ(p(3.0), 16.0);
  EXPECT_EQ(p.derivative(), (DPoly{std::vector<double>{2.0, 2.0}}));
}

}  // namespace
}  // namespace ddm::poly
