// Tests for the exact interval-rule evaluator (general deterministic
// no-communication rules, an extension of Theorem 5.1).
#include "core/interval_rules.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/nonoblivious.hpp"
#include "prob/rng.hpp"
#include "sim/monte_carlo.hpp"

namespace ddm::core {
namespace {

using util::Rational;

TEST(IntervalRule, Validation) {
  EXPECT_THROW(IntervalRule({UnitInterval{Rational(-1, 2), Rational(1, 2)}}),
               std::invalid_argument);
  EXPECT_THROW(IntervalRule({UnitInterval{Rational(1, 2), Rational(3, 2)}}),
               std::invalid_argument);
  EXPECT_THROW(IntervalRule({UnitInterval{Rational(1, 2), Rational(1, 4)}}),
               std::invalid_argument);
  // Overlapping / out-of-order intervals.
  EXPECT_THROW(IntervalRule({UnitInterval{Rational{0}, Rational(1, 2)},
                             UnitInterval{Rational(1, 3), Rational(2, 3)}}),
               std::invalid_argument);
  EXPECT_THROW(IntervalRule({UnitInterval{Rational(1, 2), Rational{1}},
                             UnitInterval{Rational{0}, Rational(1, 4)}}),
               std::invalid_argument);
  EXPECT_NO_THROW(IntervalRule({UnitInterval{Rational{0}, Rational(1, 3)},
                                UnitInterval{Rational(2, 3), Rational{1}}}));
}

TEST(IntervalRule, ZeroLengthIntervalsDropped) {
  const IntervalRule rule{{UnitInterval{Rational(1, 2), Rational(1, 2)}}};
  EXPECT_TRUE(rule.bin0_intervals().empty());
  EXPECT_EQ(rule.bin0_measure(), Rational{0});
}

TEST(IntervalRule, Factories) {
  const IntervalRule thr = IntervalRule::threshold(Rational(3, 5));
  EXPECT_EQ(thr.bin0_measure(), Rational(3, 5));
  EXPECT_EQ(thr.decide(Rational(3, 5)), kBin0);  // boundary inclusive, like x <= a
  EXPECT_EQ(thr.decide(Rational(4, 5)), kBin1);

  const IntervalRule two = IntervalRule::two_interval(Rational(1, 4), Rational(1, 2),
                                                      Rational(3, 4));
  EXPECT_EQ(two.bin0_measure(), Rational(1, 2));
  EXPECT_EQ(two.decide(Rational(3, 8)), kBin1);
  EXPECT_EQ(two.decide(Rational(5, 8)), kBin0);

  EXPECT_EQ(IntervalRule::constant(kBin0).bin0_measure(), Rational{1});
  EXPECT_EQ(IntervalRule::constant(kBin1).bin0_measure(), Rational{0});
  EXPECT_THROW((void)IntervalRule::constant(7), std::invalid_argument);
  EXPECT_THROW((void)IntervalRule::threshold(Rational{2}), std::invalid_argument);
}

TEST(IntervalRule, CellsPartitionUnitInterval) {
  const IntervalRule rule = IntervalRule::two_interval(Rational(1, 4), Rational(1, 2),
                                                       Rational(3, 4));
  const auto cells = rule.cells();
  ASSERT_EQ(cells.size(), 4u);  // [0,1/4]0, [1/4,1/2]1, [1/2,3/4]0, [3/4,1]1
  Rational total{0};
  Rational cursor{0};
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.interval.lo, cursor);
    total += cell.interval.hi - cell.interval.lo;
    cursor = cell.interval.hi;
  }
  EXPECT_EQ(total, Rational{1});
  EXPECT_EQ(cursor, Rational{1});
  EXPECT_EQ(cells[0].bin, kBin0);
  EXPECT_EQ(cells[1].bin, kBin1);
}

TEST(IntervalRules, MatchesTheorem51ForThresholdRules) {
  // Interval evaluation must reproduce the paper's single-threshold formula
  // exactly for every threshold profile.
  const std::vector<Rational> thresholds{Rational(3, 5), Rational(1, 2), Rational(7, 10)};
  std::vector<IntervalRule> rules;
  for (const Rational& a : thresholds) rules.push_back(IntervalRule::threshold(a));
  for (int i = 1; i <= 8; ++i) {
    const Rational t{i, 4};
    EXPECT_EQ(interval_rules_winning_probability(rules, t),
              threshold_winning_probability(thresholds, t))
        << "t=" << t;
  }
}

TEST(IntervalRules, ConstantRulesGiveIrwinHall) {
  // Everyone to bin 0 deterministically.
  const std::vector<IntervalRule> rules(3, IntervalRule::constant(kBin0));
  EXPECT_EQ(interval_rules_winning_probability(rules, Rational{1}), Rational(1, 6));
  const std::vector<IntervalRule> rules1(3, IntervalRule::constant(kBin1));
  EXPECT_EQ(interval_rules_winning_probability(rules1, Rational{1}), Rational(1, 6));
}

TEST(IntervalRules, IdentityBasedSplitExactValue) {
  // The identity split {P1} vs {P2, P3} (only possible with distinct player
  // ids) achieves IH_1(1) * IH_2(1) = 1/2 at t = 1: above the oblivious
  // optimum 5/12, below the symmetric-threshold optimum 0.5446.
  const std::vector<IntervalRule> rules{IntervalRule::constant(kBin0),
                                        IntervalRule::constant(kBin1),
                                        IntervalRule::constant(kBin1)};
  EXPECT_EQ(interval_rules_winning_probability(rules, Rational{1}), Rational(1, 2));
}

TEST(IntervalRules, TwoIntervalRuleMatchesMonteCarlo) {
  const std::vector<IntervalRule> rules(
      3, IntervalRule::two_interval(Rational(2, 5), Rational(3, 5), Rational(4, 5)));
  const Rational t{1};
  const double exact = interval_rules_winning_probability(rules, t).to_double();
  const IntervalRuleProtocol protocol{rules};
  prob::Rng rng{515151};
  const auto result = sim::estimate_winning_probability(protocol, 1.0, 400000, rng);
  EXPECT_TRUE(result.covers(exact)) << result.estimate << " vs " << exact;
}

TEST(IntervalRules, HeterogeneousProfileMatchesMonteCarlo) {
  const std::vector<IntervalRule> rules{
      IntervalRule::threshold(Rational(1, 2)),
      IntervalRule::two_interval(Rational(1, 4), Rational(1, 2), Rational(3, 4)),
      IntervalRule::constant(kBin1)};
  const double exact = interval_rules_winning_probability(rules, Rational(6, 5)).to_double();
  const IntervalRuleProtocol protocol{rules};
  prob::Rng rng{626262};
  const auto result = sim::estimate_winning_probability(protocol, 1.2, 400000, rng);
  EXPECT_NEAR(result.estimate, exact, 5.0 * result.standard_error + 1e-9);
}

TEST(IntervalRules, ComplementSwapsBins) {
  // Swapping every player's bin-0 set with its complement relabels the bins,
  // leaving the winning probability unchanged.
  const std::vector<IntervalRule> rules{
      IntervalRule::threshold(Rational(2, 5)),
      IntervalRule::two_interval(Rational(1, 5), Rational(2, 5), Rational(4, 5))};
  std::vector<IntervalRule> complements;
  for (const IntervalRule& rule : rules) {
    std::vector<UnitInterval> flipped;
    for (const auto& cell : rule.cells()) {
      if (cell.bin == kBin1) flipped.push_back(cell.interval);
    }
    complements.push_back(IntervalRule{std::move(flipped)});
  }
  for (int i = 1; i <= 6; ++i) {
    const Rational t{i, 4};
    EXPECT_EQ(interval_rules_winning_probability(rules, t),
              interval_rules_winning_probability(complements, t))
        << "t=" << t;
  }
}

TEST(IntervalRules, Validation) {
  EXPECT_THROW((void)interval_rules_winning_probability(std::vector<IntervalRule>{},
                                                        Rational{1}),
               std::invalid_argument);
  const std::vector<IntervalRule> rules(2, IntervalRule::threshold(Rational(1, 2)));
  EXPECT_EQ(interval_rules_winning_probability(rules, Rational{0}), Rational{0});
  EXPECT_EQ(interval_rules_winning_probability(rules, Rational{-1}), Rational{0});
}

TEST(IntervalRuleProtocol, DecidesAndNames) {
  const std::vector<IntervalRule> rules{IntervalRule::threshold(Rational(1, 2)),
                                        IntervalRule::constant(kBin1)};
  const IntervalRuleProtocol protocol{rules};
  prob::Rng rng{1};
  EXPECT_EQ(protocol.size(), 2u);
  EXPECT_EQ(protocol.decide(0, 0.3, rng), kBin0);
  EXPECT_EQ(protocol.decide(0, 0.7, rng), kBin1);
  EXPECT_EQ(protocol.decide(1, 0.1, rng), kBin1);
  EXPECT_THROW((void)protocol.decide(5, 0.1, rng), std::out_of_range);
  EXPECT_NE(protocol.name().find("bin0 on"), std::string::npos);
  EXPECT_THROW(IntervalRuleProtocol{std::vector<IntervalRule>{}}, std::invalid_argument);
}

// Parameterized sweep: interval evaluation agrees with Theorem 5.1 across a
// grid of symmetric thresholds, players, and capacities.
class IntervalThresholdSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int, int>> {};

TEST_P(IntervalThresholdSweep, AgreesWithSymmetricFormula) {
  const auto [n, beta_num, t_num] = GetParam();
  const Rational beta{beta_num, 10};
  const Rational t{t_num, 3};
  const std::vector<IntervalRule> rules(n, IntervalRule::threshold(beta));
  EXPECT_EQ(interval_rules_winning_probability(rules, t),
            symmetric_threshold_winning_probability(n, beta, t));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IntervalThresholdSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(0, 2, 5, 7, 10),
                       ::testing::Values(1, 2, 3, 4)),
    [](const ::testing::TestParamInfo<IntervalThresholdSweep::ParamType>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_beta" +
             std::to_string(std::get<1>(info.param)) + "_t" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace ddm::core
