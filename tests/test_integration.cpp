// End-to-end integration through the umbrella header: a downstream user's
// workflow, start to finish, in one test binary. Guards the public API
// surface (everything here compiles against ddm.hpp only).
#include "ddm.hpp"

#include <gtest/gtest.h>

namespace {

using ddm::util::Rational;

TEST(Integration, FullWorkflowFlagshipInstance) {
  // 1. Design: derive the optimal threshold protocol for n = 3, t = 1.
  const auto analysis = ddm::core::SymmetricThresholdAnalysis::build(3, Rational{1});
  const auto optimum = analysis.optimize();
  ASSERT_TRUE(optimum.certified);

  // 2. Compare against the oblivious optimum.
  const Rational coin = ddm::core::optimal_oblivious_winning_probability(3, Rational{1});
  EXPECT_GT(optimum.value, coin);

  // 3. Deploy: build the protocol object and simulate it.
  const auto protocol =
      ddm::core::SingleThresholdProtocol::symmetric(3, optimum.beta.midpoint());
  ddm::prob::Rng rng{20260707};
  const auto sim = ddm::sim::estimate_winning_probability(protocol, 1.0, 200000, rng);
  EXPECT_NEAR(sim.estimate, optimum.value.to_double(), 5.0 * sim.standard_error + 1e-9);

  // 4. Report: the optimality condition and a decimal expansion of beta*.
  EXPECT_EQ(optimum.optimality_condition.degree(), 2);
  const auto refined = ddm::poly::refine_root(
      optimum.optimality_condition, optimum.beta,
      Rational{ddm::util::BigInt{1}, ddm::util::BigInt::pow(ddm::util::BigInt{10}, 30)});
  EXPECT_LE(refined.width(), (Rational{ddm::util::BigInt{1},
                                       ddm::util::BigInt::pow(ddm::util::BigInt{10}, 30)}));

  // 5. Risk metric: expected overflow at the optimum is positive but small.
  const Rational overflow = ddm::core::expected_overflow_symmetric_threshold(
      3, optimum.beta.midpoint(), Rational{1});
  EXPECT_GT(overflow, Rational{0});
  EXPECT_LT(overflow, Rational(1, 2));
}

TEST(Integration, GeometryProbabilityRoundTrip) {
  // Proposition 2.2 → Lemma 2.4 → symbolic CDF → expected excess, one chain.
  const std::vector<Rational> pi{Rational(1, 2), Rational(2, 3)};
  const Rational t{3, 4};
  const std::vector<Rational> sigma(2, t);
  const Rational via_volume =
      ddm::geom::simplex_box_volume(sigma, pi) / ddm::geom::box_volume(pi);
  EXPECT_EQ(via_volume, ddm::prob::sum_uniform_cdf(pi, t));
  const auto cdf_poly = ddm::prob::sum_uniform_cdf_poly(pi);
  EXPECT_EQ(cdf_poly(t), via_volume);
  EXPECT_GE(ddm::prob::expected_excess(pi, t), Rational{0});
}

TEST(Integration, ExtensionsInteroperate) {
  // A step rule that encodes a threshold must thread through every engine
  // with identical values.
  const Rational beta{5, 8};
  const Rational t{4, 3};
  const auto via_step = ddm::core::symmetric_step_rule_winning_probability(
      4, ddm::core::StepRule::threshold(beta), t);
  const auto via_threshold = ddm::core::symmetric_threshold_winning_probability(4, beta, t);
  const auto via_intervals = ddm::core::interval_rules_winning_probability(
      std::vector<ddm::core::IntervalRule>(4, ddm::core::IntervalRule::threshold(beta)), t);
  const auto via_heterogeneous = ddm::core::heterogeneous_threshold_winning_probability(
      std::vector<Rational>(4, beta), std::vector<Rational>(4, Rational{1}), t);
  EXPECT_EQ(via_step, via_threshold);
  EXPECT_EQ(via_intervals, via_threshold);
  EXPECT_EQ(via_heterogeneous, via_threshold);
}

}  // namespace
