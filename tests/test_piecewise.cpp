// Tests for PiecewisePolynomial — construction, evaluation, certified max.
#include "poly/piecewise.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ddm::poly {
namespace {

using util::Rational;

QPoly make(std::initializer_list<Rational> coeffs_low_first) {
  return QPoly{std::vector<Rational>(coeffs_low_first)};
}

// The paper's n = 3, t = 1 winning probability P(β) (Section 5.2.1):
// 1/6 + 3/2 β² − 1/2 β³ on [0, 1/2], −11/6 + 9β − 21/2 β² + 7/2 β³ on [1/2, 1].
PiecewisePolynomial paper_n3() {
  const QPoly low = make({Rational(1, 6), Rational{0}, Rational(3, 2), Rational(-1, 2)});
  const QPoly high = make({Rational(-11, 6), Rational{9}, Rational(-21, 2), Rational(7, 2)});
  return PiecewisePolynomial{{Piece{Rational{0}, Rational(1, 2), low},
                              Piece{Rational(1, 2), Rational{1}, high}}};
}

TEST(Piecewise, ConstructionValidation) {
  const QPoly p = make({Rational{1}});
  EXPECT_THROW(PiecewisePolynomial{std::vector<Piece>{}}, std::invalid_argument);
  // inverted interval
  EXPECT_THROW(PiecewisePolynomial({Piece{Rational{1}, Rational{0}, p}}), std::invalid_argument);
  // empty interval
  EXPECT_THROW(PiecewisePolynomial({Piece{Rational{1}, Rational{1}, p}}), std::invalid_argument);
  // gap between pieces
  EXPECT_THROW(PiecewisePolynomial({Piece{Rational{0}, Rational{1}, p},
                                    Piece{Rational{2}, Rational{3}, p}}),
               std::invalid_argument);
}

TEST(Piecewise, EvaluationSelectsCorrectPiece) {
  const PiecewisePolynomial pw = paper_n3();
  EXPECT_EQ(pw(Rational{0}), Rational(1, 6));
  EXPECT_EQ(pw(Rational(1, 4)), Rational(1, 6) + Rational(3, 2) * Rational(1, 16) -
                                    Rational(1, 2) * Rational(1, 64));
  EXPECT_EQ(pw(Rational{1}), Rational(-11, 6) + Rational{9} - Rational(21, 2) + Rational(7, 2));
  // At the shared breakpoint both pieces agree (continuity) — value is 23/48.
  EXPECT_EQ(pw(Rational(1, 2)), Rational(23, 48));
}

TEST(Piecewise, EvaluationOutsideDomainThrows) {
  const PiecewisePolynomial pw = paper_n3();
  EXPECT_THROW((void)pw(Rational{-1}), std::out_of_range);
  EXPECT_THROW((void)pw(Rational{2}), std::out_of_range);
}

TEST(Piecewise, EvalDoubleMatchesExact) {
  const PiecewisePolynomial pw = paper_n3();
  for (int i = 0; i <= 20; ++i) {
    const Rational x{i, 20};
    EXPECT_NEAR(pw.eval_double(x.to_double()), pw(x).to_double(), 1e-12);
  }
}

TEST(Piecewise, ContinuityCheck) {
  EXPECT_TRUE(paper_n3().is_continuous());
  // Deliberately discontinuous: constant 0 then constant 1.
  const PiecewisePolynomial broken{
      {Piece{Rational{0}, Rational(1, 2), make({Rational{0}})},
       Piece{Rational(1, 2), Rational{1}, make({Rational{1}})}}};
  EXPECT_FALSE(broken.is_continuous());
}

TEST(Piecewise, Derivative) {
  const PiecewisePolynomial d = paper_n3().derivative();
  // derivative of the upper piece: 9 − 21β + 21/2 β² (the optimality condition).
  EXPECT_EQ(d.pieces()[1].poly,
            make({Rational{9}, Rational{-21}, Rational(21, 2)}));
  EXPECT_EQ(d.pieces().size(), 2u);
}

TEST(Piecewise, MaximizeFindsPaperOptimum) {
  const MaxCandidate best = paper_n3().maximize();
  // β* = 1 − sqrt(1/7) ≈ 0.6220 on the second piece, interior critical point.
  EXPECT_EQ(best.piece_index, 1u);
  EXPECT_TRUE(best.interior_critical);
  EXPECT_NEAR(best.location.approx(), 1.0 - std::sqrt(1.0 / 7.0), 1e-15);
  EXPECT_NEAR(best.value.to_double(), 0.5446, 1e-4);
}

TEST(Piecewise, MaximizeIsCertifiedWithValueBounds) {
  const MaxCandidate best = paper_n3().maximize();
  EXPECT_TRUE(best.certified);
  // The certified enclosure brackets the reported value and is tight.
  EXPECT_LE(best.value_bounds.lo(), best.value);
  EXPECT_GE(best.value_bounds.hi(), best.value);
  EXPECT_LT(best.value_bounds.width().to_double(), 1e-20);
}

TEST(Piecewise, TiedPointMaximaAreCertified) {
  // Two pieces with equal endpoint maxima: an exact tie must still certify.
  const PiecewisePolynomial tent{
      {Piece{Rational{0}, Rational{1}, make({Rational{0}, Rational{1}})},
       Piece{Rational{1}, Rational{2}, make({Rational{2}, Rational{-1}})},
       Piece{Rational{2}, Rational{3}, make({Rational{-2}, Rational{1}})}}};
  // Maxima: value 1 at x = 1 and at x = 3 — exact tie between two points.
  const MaxCandidate best = tent.maximize();
  EXPECT_EQ(best.value, Rational{1});
  EXPECT_TRUE(best.certified);
}

TEST(Piecewise, MaximizeReportsAllCandidates) {
  std::vector<MaxCandidate> candidates;
  (void)paper_n3().maximize(Rational{util::BigInt{1}, util::BigInt::pow(util::BigInt{2}, 96)},
                            &candidates);
  // Candidates: β = 0, 1/2, 1 endpoints + 1 interior critical point of the
  // upper piece (β = 0 is a critical point of the lower piece but coincides
  // with the endpoint and is filtered).
  ASSERT_GE(candidates.size(), 4u);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_LE(candidates[i - 1].location.midpoint(), candidates[i].location.midpoint());
  }
}

TEST(Piecewise, MaximumAtEndpointDetected) {
  // Increasing function: max at the right domain endpoint.
  const PiecewisePolynomial inc{
      {Piece{Rational{0}, Rational{1}, make({Rational{0}, Rational{1}})}}};
  const MaxCandidate best = inc.maximize();
  EXPECT_FALSE(best.interior_critical);
  EXPECT_TRUE(best.location.is_exact());
  EXPECT_EQ(best.location.midpoint(), Rational{1});
  EXPECT_EQ(best.value, Rational{1});
}

TEST(Piecewise, MaximumAtBreakpointDetected) {
  // Tent map: x on [0,1], 2 − x on [1,2]; max at the breakpoint x = 1.
  const PiecewisePolynomial tent{
      {Piece{Rational{0}, Rational{1}, make({Rational{0}, Rational{1}})},
       Piece{Rational{1}, Rational{2}, make({Rational{2}, Rational{-1}})}}};
  const MaxCandidate best = tent.maximize();
  EXPECT_EQ(best.value, Rational{1});
  EXPECT_EQ(best.location.midpoint(), Rational{1});
}

TEST(Piecewise, ConstantPieces) {
  const PiecewisePolynomial flat{
      {Piece{Rational{0}, Rational{1}, make({Rational(2, 3)})}}};
  const MaxCandidate best = flat.maximize();
  EXPECT_EQ(best.value, Rational(2, 3));
}

TEST(Piecewise, IntegralBasics) {
  // ∫ of the tent map over [0,2] = 1 (two unit triangles halves).
  const PiecewisePolynomial tent{
      {Piece{Rational{0}, Rational{1}, make({Rational{0}, Rational{1}})},
       Piece{Rational{1}, Rational{2}, make({Rational{2}, Rational{-1}})}}};
  EXPECT_EQ(tent.integral(Rational{0}, Rational{2}), Rational{1});
  // Sub-range crossing the breakpoint: ∫_{1/2}^{3/2} = 3/8 + 3/8 = 3/4.
  EXPECT_EQ(tent.integral(Rational(1, 2), Rational(3, 2)), Rational(3, 4));
  // Empty range integrates to zero.
  EXPECT_EQ(tent.integral(Rational{1}, Rational{1}), Rational{0});
}

TEST(Piecewise, IntegralOfPaperCurve) {
  // ∫_0^1 P(β) dβ for the n = 3, t = 1 curve: piecewise antiderivatives.
  // Piece A on [0,1/2]: ∫ = [β/6 + β³/2 − β⁴/8] = 1/12 + 1/16 − 1/128.
  // Piece B on [1/2,1]: ∫ = [−11β/6 + 9β²/2 − 7β³/2 + 7β⁴/8] between 1/2, 1.
  const PiecewisePolynomial pw = paper_n3();
  const Rational piece_a = Rational(1, 12) + Rational(1, 16) - Rational(1, 128);
  const QPoly anti_b =
      make({Rational(-11, 6), Rational{9}, Rational(-21, 2), Rational(7, 2)}).antiderivative();
  const Rational piece_b = anti_b(Rational{1}) - anti_b(Rational(1, 2));
  EXPECT_EQ(pw.integral(Rational{0}, Rational{1}), piece_a + piece_b);
}

TEST(Piecewise, IntegralValidation) {
  const PiecewisePolynomial pw = paper_n3();
  EXPECT_THROW((void)pw.integral(Rational{1}, Rational{0}), std::out_of_range);
  EXPECT_THROW((void)pw.integral(Rational{-1}, Rational{1}), std::out_of_range);
  EXPECT_THROW((void)pw.integral(Rational{0}, Rational{2}), std::out_of_range);
}

TEST(Piecewise, DomainAccessors) {
  const PiecewisePolynomial pw = paper_n3();
  EXPECT_EQ(pw.domain_lo(), Rational{0});
  EXPECT_EQ(pw.domain_hi(), Rational{1});
  EXPECT_EQ(pw.pieces().size(), 2u);
}

}  // namespace
}  // namespace ddm::poly
