// Tests for the empirical CDF / Kolmogorov–Smirnov validation tooling.
#include "prob/empirical.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "prob/rng.hpp"

namespace ddm::prob {
namespace {

TEST(EmpiricalCdf, RejectsEmptySample) {
  EXPECT_THROW(EmpiricalCdf{std::vector<double>{}}, std::invalid_argument);
}

TEST(EmpiricalCdf, StepFunctionValues) {
  const EmpiricalCdf cdf{std::vector<double>{3.0, 1.0, 2.0}};
  EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf(1.0), 1.0 / 3.0);   // right-continuous: includes the jump
  EXPECT_DOUBLE_EQ(cdf(1.5), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(cdf(2.0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cdf(3.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf(99.0), 1.0);
}

TEST(EmpiricalCdf, SamplesAreSorted) {
  const EmpiricalCdf cdf{std::vector<double>{5.0, -1.0, 3.0}};
  EXPECT_TRUE(std::is_sorted(cdf.sorted_samples().begin(), cdf.sorted_samples().end()));
  EXPECT_EQ(cdf.size(), 3u);
}

TEST(EmpiricalCdf, TiedSamplesHandled) {
  const EmpiricalCdf cdf{std::vector<double>{1.0, 1.0, 1.0, 2.0}};
  EXPECT_DOUBLE_EQ(cdf(1.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf(0.999), 0.0);
}

TEST(KsDistance, ZeroAgainstOwnStepFunction) {
  // The KS distance of a sample against a CDF that matches its own steps'
  // midpoints is at most 1/(2n).
  const std::vector<double> samples{0.25, 0.5, 0.75, 1.0};
  const EmpiricalCdf cdf{samples};
  const double ks = cdf.ks_distance([](double t) {
    return std::clamp(t, 0.0, 1.0);  // true U[0,1] CDF; the sample is the quartiles
  });
  EXPECT_LE(ks, 0.25 + 1e-12);
}

TEST(KsDistance, DetectsWrongDistribution) {
  Rng rng{31};
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.uniform());
  const EmpiricalCdf cdf{std::move(samples)};
  // Correct model passes at alpha = 0.001.
  const double ks_good = cdf.ks_distance([](double t) { return std::clamp(t, 0.0, 1.0); });
  EXPECT_LT(ks_good, cdf.ks_critical_value(0.001));
  // Squared-CDF model (Beta(2,1) claim) fails decisively.
  const double ks_bad = cdf.ks_distance([](double t) {
    const double c = std::clamp(t, 0.0, 1.0);
    return c * c;
  });
  EXPECT_GT(ks_bad, cdf.ks_critical_value(0.001));
}

TEST(KsCriticalValue, ShrinksWithSampleSize) {
  const EmpiricalCdf small{std::vector<double>(100, 0.5)};
  const EmpiricalCdf large{std::vector<double>(10000, 0.5)};
  EXPECT_GT(small.ks_critical_value(0.05), large.ks_critical_value(0.05));
  // Tighter alpha → larger critical value.
  EXPECT_LT(small.ks_critical_value(0.05), small.ks_critical_value(0.001));
}

}  // namespace
}  // namespace ddm::prob
