// Tests for the ddm::obs observability layer: metrics registry semantics
// (enable gating, counter/gauge/histogram accounting, cross-thread scrape,
// kind-mismatch rejection, reset, exposition formats) and the tracing side
// (span collection, ring-buffer drops, Chrome trace_event export).
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/status.hpp"

namespace ddm::obs {
namespace {

// Every test leaves both switches off so sibling test binaries (and earlier
// tests in this one) see the zero-cost default.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::instance().reset();
    set_metrics_enabled(true);
  }
  void TearDown() override {
    set_metrics_enabled(false);
    stop_tracing();
    Registry::instance().reset();
  }

  static const MetricSample* find(const std::vector<MetricSample>& samples,
                                  std::string_view name) {
    for (const MetricSample& sample : samples) {
      if (sample.name == name) return &sample;
    }
    return nullptr;
  }
};

TEST_F(ObsTest, CounterAccumulatesAndScrapes) {
  const Counter hits = counter("test.hits");
  hits.add();
  hits.add(41);
  const auto samples = Registry::instance().scrape();
  const MetricSample* sample = find(samples, "test.hits");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(sample->counter_value, 42u);
}

TEST_F(ObsTest, DisabledCounterIsANoOp) {
  const Counter hits = counter("test.disabled");
  set_metrics_enabled(false);
  hits.add(1000);
  set_metrics_enabled(true);
  hits.add(1);
  const auto samples = Registry::instance().scrape();
  const MetricSample* sample = find(samples, "test.disabled");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->counter_value, 1u);
}

TEST_F(ObsTest, SameNameReturnsSameSlot) {
  const Counter a = counter("test.same");
  const Counter b = counter("test.same");
  a.add(2);
  b.add(3);
  const auto samples = Registry::instance().scrape();
  const MetricSample* sample = find(samples, "test.same");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->counter_value, 5u);
}

TEST_F(ObsTest, KindMismatchThrows) {
  (void)counter("test.kind");
  EXPECT_THROW((void)gauge("test.kind"), Error);
  EXPECT_THROW((void)histogram("test.kind"), Error);
  try {
    (void)histogram("test.kind");
    FAIL() << "expected ddm::Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("test.kind"), std::string::npos);
  }
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  const Gauge depth = gauge("test.depth");
  depth.set(7);
  depth.add(-3);
  const auto samples = Registry::instance().scrape();
  const MetricSample* sample = find(samples, "test.depth");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, MetricSample::Kind::kGauge);
  EXPECT_EQ(sample->gauge_value, 4);
}

TEST_F(ObsTest, HistogramCountsSumAndBuckets) {
  const Histogram widths = histogram("test.widths");
  widths.record(0.5);
  widths.record(0.5);
  widths.record(1e-12);
  const auto samples = Registry::instance().scrape();
  const MetricSample* sample = find(samples, "test.widths");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(sample->histogram_count, 3u);
  EXPECT_NEAR(sample->histogram_sum, 1.0 + 1e-12, 1e-15);
  // Both observations of 0.5 share one bucket (the boundary value 2^-1 lands
  // in the le=1 bucket) while 1e-12 lands many buckets below; only non-empty
  // buckets are reported and their counts add up to the total.
  ASSERT_EQ(sample->buckets.size(), 2u);
  EXPECT_LE(sample->buckets[0].first, 1e-11);
  EXPECT_EQ(sample->buckets[0].second, 1u);
  EXPECT_EQ(sample->buckets[1].first, 1.0);
  EXPECT_EQ(sample->buckets[1].second, 2u);
}

TEST_F(ObsTest, ScrapeMergesShardsAcrossThreads) {
  const Counter hits = counter("test.threads");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&hits] {
      for (int k = 0; k < kPerThread; ++k) hits.add();
    });
  }
  for (std::thread& worker : workers) worker.join();
  // The workers have exited: their shards are folded into the retired totals,
  // which the scrape must still include.
  const auto samples = Registry::instance().scrape();
  const MetricSample* sample = find(samples, "test.threads");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->counter_value, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsTest, RetiredThreadHistogramSumSurvivesFold) {
  const Histogram widths = histogram("test.retired_hist");
  std::thread([&widths] { widths.record(0.25); }).join();
  const auto samples = Registry::instance().scrape();
  const MetricSample* sample = find(samples, "test.retired_hist");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->histogram_count, 1u);
  EXPECT_DOUBLE_EQ(sample->histogram_sum, 0.25);
}

TEST_F(ObsTest, ResetZeroesEverything) {
  counter("test.reset_c").add(5);
  gauge("test.reset_g").set(5);
  histogram("test.reset_h").record(5.0);
  Registry::instance().reset();
  const auto samples = Registry::instance().scrape();
  const MetricSample* c = find(samples, "test.reset_c");
  const MetricSample* g = find(samples, "test.reset_g");
  const MetricSample* h = find(samples, "test.reset_h");
  ASSERT_NE(c, nullptr);
  ASSERT_NE(g, nullptr);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(c->counter_value, 0u);
  EXPECT_EQ(g->gauge_value, 0);
  EXPECT_EQ(h->histogram_count, 0u);
}

TEST_F(ObsTest, ScrapeIsSortedByName) {
  counter("test.zzz").add();
  counter("test.aaa").add();
  const auto samples = Registry::instance().scrape();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].name, samples[i].name);
  }
}

TEST_F(ObsTest, TextJsonAndPrometheusExpositionsRender) {
  counter("test.export_c").add(3);
  histogram("test.export_h").record(1.5);

  std::ostringstream text;
  Registry::instance().write_text(text);
  EXPECT_NE(text.str().find("test.export_c"), std::string::npos);
  EXPECT_NE(text.str().find('3'), std::string::npos);

  std::ostringstream json;
  Registry::instance().write_json(json);
  EXPECT_NE(json.str().find("\"test.export_c\""), std::string::npos);
  EXPECT_EQ(json.str().front(), '{');
  EXPECT_EQ(json.str().back(), '\n');

  std::ostringstream prom;
  Registry::instance().write_prometheus(prom);
  // Prometheus names must not contain dots; the exporter rewrites them.
  EXPECT_EQ(prom.str().find("test.export_c"), std::string::npos);
  EXPECT_NE(prom.str().find("test_export_c"), std::string::npos);
  EXPECT_NE(prom.str().find("test_export_h_bucket"), std::string::npos);
  EXPECT_NE(prom.str().find("le=\"+Inf\""), std::string::npos);
}

TEST_F(ObsTest, ScopedTimerRecordsElapsedSeconds) {
  const Histogram hist = histogram("test.timer");
  { ScopedTimer timer(hist); }
  const auto samples = Registry::instance().scrape();
  const MetricSample* sample = find(samples, "test.timer");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->histogram_count, 1u);
  EXPECT_GE(sample->histogram_sum, 0.0);
  EXPECT_LT(sample->histogram_sum, 10.0);  // sanity: well under ten seconds
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "ddm_trace_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".json";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    stop_tracing();
    std::remove(path_.c_str());
  }

  std::string read_file() const {
    std::ifstream in(path_);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  std::string path_;
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  { DDM_SPAN("test.noop"); }
  EXPECT_EQ(trace_span_count(), 0u);
}

TEST_F(TraceTest, SpansCollectWhileEnabled) {
  start_tracing();
  {
    DDM_SPAN("test.outer", {{"n", 3}});
    { DDM_SPAN("test.inner", {{"w", 0.5}, {"label", "x"}}); }
  }
  stop_tracing();
  EXPECT_EQ(trace_span_count(), 2u);
  // Stopping freezes the collection: later spans are not recorded.
  { DDM_SPAN("test.after"); }
  EXPECT_EQ(trace_span_count(), 2u);
}

TEST_F(TraceTest, StartTracingClearsPreviousRun) {
  start_tracing();
  { DDM_SPAN("test.first"); }
  stop_tracing();
  EXPECT_EQ(trace_span_count(), 1u);
  start_tracing();
  stop_tracing();
  EXPECT_EQ(trace_span_count(), 0u);
}

TEST_F(TraceTest, ExportWritesChromeTraceJson) {
  start_tracing();
  {
    DDM_SPAN("test.export", {{"n", 7}, {"kind", "demo"}});
  }
  stop_tracing();
  export_chrome_trace(path_);
  const std::string json = read_file();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test.export\""), std::string::npos);
  EXPECT_NE(json.find("\"n\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"demo\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
}

TEST_F(TraceTest, ExportToUnwritablePathThrows) {
  start_tracing();
  { DDM_SPAN("test.unwritable"); }
  stop_tracing();
  EXPECT_THROW(export_chrome_trace("/nonexistent-dir/trace.json"), Error);
}

TEST_F(TraceTest, RingOverwritesOldestAndCountsDrops) {
  start_tracing();
  constexpr std::size_t kOver = 9000;  // > ring capacity (8192)
  for (std::size_t i = 0; i < kOver; ++i) {
    DDM_SPAN("test.flood");
  }
  stop_tracing();
  EXPECT_EQ(trace_span_count(), 8192u);
  EXPECT_EQ(trace_dropped(), kOver - 8192u);
}

TEST_F(TraceTest, PerThreadSpansGetDistinctTids) {
  start_tracing();
  { DDM_SPAN("test.main_thread"); }
  std::thread([] { DDM_SPAN("test.worker_thread"); }).join();
  stop_tracing();
  export_chrome_trace(path_);
  const std::string json = read_file();
  const auto main_pos = json.find("test.main_thread");
  const auto worker_pos = json.find("test.worker_thread");
  ASSERT_NE(main_pos, std::string::npos);
  ASSERT_NE(worker_pos, std::string::npos);
  // Two different threads must be exported under two different tids: count
  // the distinct "tid": values present.
  std::vector<std::string> tids;
  std::size_t pos = 0;
  while ((pos = json.find("\"tid\": ", pos)) != std::string::npos) {
    pos += 7;
    const std::size_t end = json.find_first_of(",}", pos);
    const std::string tid = json.substr(pos, end - pos);
    if (std::find(tids.begin(), tids.end(), tid) == tids.end()) tids.push_back(tid);
  }
  EXPECT_EQ(tids.size(), 2u);
}

}  // namespace
}  // namespace ddm::obs
