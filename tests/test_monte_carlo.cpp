// Tests for the Monte Carlo simulation harness.
#include "sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/baselines.hpp"
#include "core/oblivious.hpp"
#include "core/protocol.hpp"

namespace ddm::sim {
namespace {

using util::Rational;

TEST(WilsonInterval, BasicProperties) {
  const SimResult r = wilson_interval(50, 100);
  EXPECT_DOUBLE_EQ(r.estimate, 0.5);
  EXPECT_GT(r.ci_high, r.ci_low);
  EXPECT_GT(r.ci_low, 0.3);
  EXPECT_LT(r.ci_high, 0.7);
  EXPECT_TRUE(r.covers(0.5));
  EXPECT_FALSE(r.covers(0.9));
}

TEST(WilsonInterval, ExtremesStayInUnitInterval) {
  const SimResult zero = wilson_interval(0, 1000);
  EXPECT_GE(zero.ci_low, 0.0);
  EXPECT_GT(zero.ci_high, 0.0);  // Wilson never collapses to a point at 0
  const SimResult one = wilson_interval(1000, 1000);
  EXPECT_LE(one.ci_high, 1.0);
  EXPECT_LT(one.ci_low, 1.0);
}

TEST(WilsonInterval, ShrinksWithSamples) {
  const SimResult small = wilson_interval(50, 100);
  const SimResult large = wilson_interval(5000, 10000);
  EXPECT_LT(large.ci_high - large.ci_low, small.ci_high - small.ci_low);
}

TEST(WilsonInterval, Validation) {
  EXPECT_THROW((void)wilson_interval(1, 0), std::invalid_argument);
  EXPECT_THROW((void)wilson_interval(5, 4), std::invalid_argument);
}

TEST(EstimateWinning, DeterministicGivenSeed) {
  const auto protocol = core::ObliviousProtocol::uniform(3);
  prob::Rng rng_a{42};
  prob::Rng rng_b{42};
  const SimResult a = estimate_winning_probability(protocol, 1.0, 50000, rng_a);
  const SimResult b = estimate_winning_probability(protocol, 1.0, 50000, rng_b);
  EXPECT_EQ(a.wins, b.wins);
}

TEST(EstimateWinning, CoversExactValue) {
  const auto protocol = core::ObliviousProtocol::uniform(3);
  const double exact =
      core::optimal_oblivious_winning_probability(3, Rational{1}).to_double();  // 5/12
  prob::Rng rng{7};
  const SimResult result = estimate_winning_probability(protocol, 1.0, 500000, rng);
  EXPECT_TRUE(result.covers(exact)) << result.estimate;
}

TEST(EstimateWinning, WinsTallyIndependentOfThreadCount) {
  // The trial range is cut into fixed blocks with per-block rng streams, so
  // the tally must be bitwise identical for every thread count — including
  // trial counts that are not multiples of the block size.
  const auto protocol = core::ObliviousProtocol::uniform(3);
  for (const std::uint64_t trials : {50000ull, 100000ull, 16384ull * 3 + 123}) {
    prob::Rng rng_1{42};
    prob::Rng rng_2{42};
    prob::Rng rng_8{42};
    const SimResult one = estimate_winning_probability(protocol, 1.0, trials, rng_1, 1);
    const SimResult two = estimate_winning_probability(protocol, 1.0, trials, rng_2, 2);
    const SimResult eight = estimate_winning_probability(protocol, 1.0, trials, rng_8, 8);
    EXPECT_EQ(one.wins, two.wins) << trials;
    EXPECT_EQ(one.wins, eight.wins) << trials;
    EXPECT_EQ(one.trials, trials);
  }
}

TEST(EstimateWinning, MultithreadedMatchesExactToo) {
  const auto protocol = core::ObliviousProtocol::uniform(4);
  const double exact =
      core::optimal_oblivious_winning_probability(4, Rational(4, 3)).to_double();
  prob::Rng rng{11};
  const SimResult result =
      estimate_winning_probability(protocol, 4.0 / 3.0, 500000, rng, /*threads=*/4);
  EXPECT_TRUE(result.covers(exact)) << result.estimate << " vs " << exact;
  EXPECT_EQ(result.trials, 500000u);
}

TEST(EstimateWinning, ZeroThreadsTreatedAsOne) {
  const auto protocol = core::ObliviousProtocol::uniform(2);
  prob::Rng rng{3};
  const SimResult result = estimate_winning_probability(protocol, 1.0, 10000, rng, 0);
  EXPECT_EQ(result.trials, 10000u);
}

TEST(EstimateWinning, Validation) {
  const auto protocol = core::ObliviousProtocol::uniform(2);
  prob::Rng rng{3};
  EXPECT_THROW((void)estimate_winning_probability(protocol, 1.0, 0, rng),
               std::invalid_argument);
}

TEST(EstimateEvent, MatchesAnalyticArea) {
  // P(x + y <= 1) over the unit square is 1/2.
  prob::Rng rng{21};
  const SimResult result = estimate_event_probability(
      2, [](std::span<const double> xs) { return xs[0] + xs[1] <= 1.0; }, 300000, rng);
  EXPECT_TRUE(result.covers(0.5));
}

TEST(EstimateEvent, Validation) {
  prob::Rng rng{1};
  EXPECT_THROW((void)estimate_event_probability(
                   2, [](std::span<const double>) { return true; }, 0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)estimate_event_probability(2, nullptr, 10, rng), std::invalid_argument);
}

TEST(EstimateEvent, DegenerateProbabilities) {
  prob::Rng rng{1};
  const SimResult always = estimate_event_probability(
      1, [](std::span<const double>) { return true; }, 1000, rng);
  EXPECT_DOUBLE_EQ(always.estimate, 1.0);
  const SimResult never = estimate_event_probability(
      1, [](std::span<const double>) { return false; }, 1000, rng);
  EXPECT_DOUBLE_EQ(never.estimate, 0.0);
}

TEST(EstimateWinning, StandardErrorScaling) {
  const auto protocol = core::ObliviousProtocol::uniform(3);
  prob::Rng rng_a{5};
  prob::Rng rng_b{5};
  const SimResult small = estimate_winning_probability(protocol, 1.0, 10000, rng_a);
  const SimResult large = estimate_winning_probability(protocol, 1.0, 640000, rng_b);
  // 64x the samples → ~8x smaller standard error.
  EXPECT_NEAR(small.standard_error / large.standard_error, 8.0, 2.0);
}

}  // namespace
}  // namespace ddm::sim
