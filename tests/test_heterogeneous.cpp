// Tests for heterogeneous input ranges x_i ~ U[0, c_i] (generalized
// Theorems 4.1 / 5.1 via Lemma 2.4's full generality).
#include "core/heterogeneous.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/nonoblivious.hpp"
#include "core/oblivious.hpp"
#include "core/protocol.hpp"
#include "prob/rng.hpp"
#include "prob/uniform_sum.hpp"
#include "util/status.hpp"

namespace ddm::core {
namespace {

using util::Rational;

TEST(HeterogeneousOblivious, ReducesToHomogeneousCase) {
  const std::vector<Rational> alpha{Rational(1, 3), Rational(2, 5), Rational(1, 2),
                                    Rational(3, 4)};
  const std::vector<Rational> unit_ranges(4, Rational{1});
  for (int i = 1; i <= 8; ++i) {
    const Rational t{i, 3};
    EXPECT_EQ(heterogeneous_oblivious_winning_probability(alpha, unit_ranges, t),
              oblivious_winning_probability(alpha, t))
        << "t=" << t;
  }
}

TEST(HeterogeneousOblivious, ScalingLaw) {
  // Scaling every range AND the capacity by the same factor leaves the
  // winning probability invariant (the problem is scale-free).
  const std::vector<Rational> alpha{Rational(1, 2), Rational(1, 3), Rational(2, 3)};
  const std::vector<Rational> ranges{Rational{1}, Rational(1, 2), Rational{2}};
  const Rational scale{7, 3};
  std::vector<Rational> scaled_ranges;
  for (const Rational& c : ranges) scaled_ranges.push_back(c * scale);
  for (int i = 1; i <= 6; ++i) {
    const Rational t{i, 2};
    EXPECT_EQ(heterogeneous_oblivious_winning_probability(alpha, ranges, t),
              heterogeneous_oblivious_winning_probability(alpha, scaled_ranges, t * scale));
  }
}

TEST(HeterogeneousOblivious, TinyPlayersNeverOverflowAlone) {
  // With ranges far below t, everything always fits: P = 1.
  const std::vector<Rational> alpha(3, Rational(1, 2));
  const std::vector<Rational> ranges(3, Rational(1, 10));
  EXPECT_EQ(heterogeneous_oblivious_winning_probability(alpha, ranges, Rational{1}),
            Rational{1});
}

TEST(HeterogeneousOblivious, MatchesSimulation) {
  const std::vector<Rational> alpha{Rational(1, 4), Rational(3, 5), Rational(1, 2)};
  const std::vector<Rational> ranges{Rational(1, 2), Rational{1}, Rational(3, 2)};
  const Rational t{1};
  const double exact =
      heterogeneous_oblivious_winning_probability(alpha, ranges, t).to_double();
  const ObliviousProtocol protocol{alpha};
  const std::vector<double> ranges_d{0.5, 1.0, 1.5};
  prob::Rng rng{737373};
  const auto result =
      estimate_heterogeneous_winning_probability(protocol, ranges_d, 1.0, 400000, rng);
  EXPECT_NEAR(result.estimate, exact, 4.0 * result.standard_error + 1e-9);
}

TEST(HeterogeneousOblivious, Validation) {
  const std::vector<Rational> alpha(2, Rational(1, 2));
  EXPECT_THROW((void)heterogeneous_oblivious_winning_probability(
                   alpha, std::vector<Rational>{Rational{1}}, Rational{1}),
               ddm::Error);
  EXPECT_THROW((void)heterogeneous_oblivious_winning_probability(
                   alpha, std::vector<Rational>{Rational{1}, Rational{0}}, Rational{1}),
               ddm::Error);
  EXPECT_THROW((void)heterogeneous_oblivious_winning_probability(
                   std::vector<Rational>{Rational{2}, Rational{0}},
                   std::vector<Rational>{Rational{1}, Rational{1}}, Rational{1}),
               ddm::Error);
}

TEST(HeterogeneousThreshold, ReducesToHomogeneousCase) {
  const std::vector<Rational> thresholds{Rational(3, 5), Rational(1, 2), Rational(7, 10)};
  const std::vector<Rational> unit_ranges(3, Rational{1});
  for (int i = 1; i <= 8; ++i) {
    const Rational t{i, 4};
    EXPECT_EQ(heterogeneous_threshold_winning_probability(thresholds, unit_ranges, t),
              threshold_winning_probability(thresholds, t))
        << "t=" << t;
  }
}

TEST(HeterogeneousThreshold, DegenerateThresholdsGiveSumCdf) {
  // thresholds = ranges → everyone picks bin 0: P = P(Σ U[0, c_i] <= t).
  const std::vector<Rational> ranges{Rational(1, 2), Rational{1}, Rational(3, 4)};
  for (int i = 1; i <= 8; ++i) {
    const Rational t{i, 4};
    EXPECT_EQ(heterogeneous_threshold_winning_probability(ranges, ranges, t),
              prob::sum_uniform_cdf(ranges, t))
        << "t=" << t;
  }
}

TEST(HeterogeneousThreshold, MatchesSimulation) {
  const std::vector<Rational> thresholds{Rational(1, 4), Rational(2, 5), Rational{1}};
  const std::vector<Rational> ranges{Rational(1, 2), Rational{1}, Rational(3, 2)};
  const double exact =
      heterogeneous_threshold_winning_probability(thresholds, ranges, Rational(6, 5))
          .to_double();
  const SingleThresholdProtocol protocol{thresholds};
  // NOTE: SingleThresholdProtocol validates thresholds in [0,1]; here the
  // third threshold is 1 <= range 3/2, so decide() still works on raw inputs.
  const std::vector<double> ranges_d{0.5, 1.0, 1.5};
  prob::Rng rng{848484};
  const auto result =
      estimate_heterogeneous_winning_probability(protocol, ranges_d, 1.2, 400000, rng);
  EXPECT_NEAR(result.estimate, exact, 4.0 * result.standard_error + 1e-9);
}

TEST(HeterogeneousThreshold, ThresholdAboveRangeThrows) {
  EXPECT_THROW((void)heterogeneous_threshold_winning_probability(
                   std::vector<Rational>{Rational{2}},
                   std::vector<Rational>{Rational{1}}, Rational{1}),
               ddm::Error);
}

TEST(HeterogeneousSim, Validation) {
  const ObliviousProtocol protocol = ObliviousProtocol::uniform(2);
  prob::Rng rng{1};
  EXPECT_THROW((void)estimate_heterogeneous_winning_probability(
                   protocol, std::vector<double>{1.0}, 1.0, 100, rng),
               ddm::Error);
  EXPECT_THROW((void)estimate_heterogeneous_winning_probability(
                   protocol, std::vector<double>{1.0, 1.0}, 1.0, 0, rng),
               ddm::Error);
}

// Parameterized property sweep: the heterogeneous threshold probability is
// monotone nondecreasing in the capacity and bounded in [0, 1].
class HeterogeneousCapacitySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HeterogeneousCapacitySweep, MonotoneBounded) {
  const auto [threshold_num, range_num] = GetParam();
  const std::vector<Rational> thresholds{Rational{threshold_num, 10},
                                         Rational{threshold_num, 20}};
  const std::vector<Rational> ranges{Rational{range_num, 10}, Rational{range_num, 5}};
  // Thresholds must stay within ranges for this sweep's parameters.
  ASSERT_LE(thresholds[0], ranges[0]);
  ASSERT_LE(thresholds[1], ranges[1]);
  Rational previous{-1};
  for (int i = 0; i <= 12; ++i) {
    const Rational t{i, 4};
    const Rational p = heterogeneous_threshold_winning_probability(thresholds, ranges, t);
    EXPECT_GE(p, previous);
    EXPECT_GE(p, Rational{0});
    EXPECT_LE(p, Rational{1});
    previous = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, HeterogeneousCapacitySweep,
                         ::testing::Combine(::testing::Values(1, 3, 5),
                                            ::testing::Values(5, 8, 10)),
                         [](const auto& info) {
                           return "a" + std::to_string(std::get<0>(info.param)) + "_c" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace ddm::core
