// Tests for MultilinearPolynomial and the symbolic Theorem 4.1 object.
#include "poly/multilinear.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/oblivious.hpp"
#include "core/optimality.hpp"

namespace ddm::poly {
namespace {

using util::Rational;

TEST(Multilinear, ConstructionAndBasics) {
  const MultilinearPolynomial zero{3};
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.term_count(), 0u);
  EXPECT_EQ(zero.support(), 0u);

  const auto c = MultilinearPolynomial::constant(3, Rational(5, 7));
  EXPECT_EQ(c.coefficient(0), Rational(5, 7));
  EXPECT_EQ(c.term_count(), 1u);

  const auto x1 = MultilinearPolynomial::variable(3, 1);
  EXPECT_EQ(x1.coefficient(0b010), Rational{1});
  EXPECT_EQ(x1.support(), 0b010u);

  const auto y2 = MultilinearPolynomial::one_minus_variable(3, 2);
  EXPECT_EQ(y2.coefficient(0), Rational{1});
  EXPECT_EQ(y2.coefficient(0b100), Rational{-1});

  EXPECT_THROW(MultilinearPolynomial{25}, std::invalid_argument);
  EXPECT_THROW((void)MultilinearPolynomial::variable(3, 3), std::out_of_range);
}

TEST(Multilinear, AdditionAndScaling) {
  auto p = MultilinearPolynomial::variable(2, 0);
  p += MultilinearPolynomial::variable(2, 0);
  EXPECT_EQ(p.coefficient(0b01), Rational{2});
  p -= MultilinearPolynomial::variable(2, 0) * Rational{2};
  EXPECT_TRUE(p.is_zero());  // cancelled terms are erased

  auto q = MultilinearPolynomial::constant(2, Rational{3});
  q *= Rational{0};
  EXPECT_TRUE(q.is_zero());

  const MultilinearPolynomial other{3};
  EXPECT_THROW(p += other, std::invalid_argument);
}

TEST(Multilinear, DisjointProduct) {
  // (a0)(1 − a1) = a0 − a0 a1.
  const auto product = MultilinearPolynomial::variable(2, 0).disjoint_product(
      MultilinearPolynomial::one_minus_variable(2, 1));
  EXPECT_EQ(product.coefficient(0b01), Rational{1});
  EXPECT_EQ(product.coefficient(0b11), Rational{-1});
  EXPECT_EQ(product.term_count(), 2u);

  // Overlapping supports are rejected (α_i² would break multilinearity).
  EXPECT_THROW((void)MultilinearPolynomial::variable(2, 0).disjoint_product(
                   MultilinearPolynomial::variable(2, 0)),
               std::domain_error);
}

TEST(Multilinear, Evaluation) {
  // p = 2 − a0 + 3 a0 a1 at (1/2, 1/3): 2 − 1/2 + 3·(1/6) = 2.
  auto p = MultilinearPolynomial::constant(2, Rational{2});
  p -= MultilinearPolynomial::variable(2, 0);
  p += MultilinearPolynomial::variable(2, 0)
           .disjoint_product(MultilinearPolynomial::variable(2, 1)) *
       Rational{3};
  const std::vector<Rational> point{Rational(1, 2), Rational(1, 3)};
  EXPECT_EQ(p(point), Rational{2});
  EXPECT_THROW((void)p(std::vector<Rational>{Rational{1}}), std::invalid_argument);
}

TEST(Multilinear, PartialDerivativeAndSubstitute) {
  // p = 2 − a0 + 3 a0 a1: ∂/∂a0 = −1 + 3 a1; substitute a1 = 1/3 → 2 − a0 + a0 = 2.
  auto p = MultilinearPolynomial::constant(2, Rational{2});
  p -= MultilinearPolynomial::variable(2, 0);
  p += MultilinearPolynomial::variable(2, 0)
           .disjoint_product(MultilinearPolynomial::variable(2, 1)) *
       Rational{3};
  const auto d0 = p.partial_derivative(0);
  EXPECT_EQ(d0.coefficient(0), Rational{-1});
  EXPECT_EQ(d0.coefficient(0b10), Rational{3});
  const auto fixed = p.substitute(1, Rational(1, 3));
  EXPECT_EQ(fixed.coefficient(0), Rational{2});
  EXPECT_EQ(fixed.coefficient(0b01), Rational{0});
  EXPECT_THROW((void)p.partial_derivative(5), std::out_of_range);
}

TEST(Multilinear, ToString) {
  auto p = MultilinearPolynomial::constant(2, Rational(1, 6));
  p += MultilinearPolynomial::variable(2, 0)
           .disjoint_product(MultilinearPolynomial::variable(2, 1)) *
       Rational(1, 3);
  p -= MultilinearPolynomial::variable(2, 1);
  // Terms are ordered by subset mask (constant, a0, a1, a0*a1, ...).
  EXPECT_EQ(p.to_string(), "1/6 - a1 + 1/3*a0*a1");
  EXPECT_EQ(MultilinearPolynomial{2}.to_string(), "0");
}

// --------------------------------------------------------------------------
// The symbolic Theorem 4.1 object.
// --------------------------------------------------------------------------

TEST(ObliviousPolynomial, EvaluationMatchesEngine) {
  const std::vector<Rational> alpha{Rational(1, 3), Rational(2, 5), Rational(1, 2),
                                    Rational(7, 9)};
  for (std::uint32_t n = 1; n <= 4; ++n) {
    const std::span<const Rational> point{alpha.data(), n};
    for (int i = 1; i <= 6; ++i) {
      const Rational t{i, 3};
      const auto p = core::oblivious_winning_polynomial(n, t);
      EXPECT_EQ(p(point), core::oblivious_winning_probability(point, t))
          << "n=" << n << " t=" << t;
    }
  }
}

TEST(ObliviousPolynomial, PartialDerivativesAreCorollary42) {
  const std::vector<Rational> alpha{Rational(1, 4), Rational(3, 5), Rational(1, 2)};
  const Rational t{1};
  const auto p = core::oblivious_winning_polynomial(3, t);
  const auto gradient = core::oblivious_gradient(alpha, t);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(p.partial_derivative(k)(alpha), gradient[k]) << k;
  }
}

TEST(ObliviousPolynomial, CoefficientsSymmetricUnderPlayerSwap) {
  // Exchanging two players permutes masks; coefficients must be invariant.
  const auto p = core::oblivious_winning_polynomial(4, Rational(4, 3));
  const auto swap_bits = [](std::uint32_t mask, int i, int j) {
    const bool bi = mask & (1u << i);
    const bool bj = mask & (1u << j);
    mask &= ~((1u << i) | (1u << j));
    if (bi) mask |= 1u << j;
    if (bj) mask |= 1u << i;
    return mask;
  };
  for (std::uint32_t mask = 0; mask < 16; ++mask) {
    EXPECT_EQ(p.coefficient(mask), p.coefficient(swap_bits(mask, 0, 2))) << mask;
    EXPECT_EQ(p.coefficient(mask), p.coefficient(swap_bits(mask, 1, 3))) << mask;
  }
}

TEST(ObliviousPolynomial, SubstitutionReducesToSmallerSystem) {
  // Fixing player 3's coin to alpha = 1 (always bin 0) at n = 3 must yield a
  // polynomial whose evaluations match direct computation with that alpha.
  const Rational t{1};
  const auto p = core::oblivious_winning_polynomial(3, t);
  const auto fixed = p.substitute(2, Rational{1});
  const std::vector<Rational> rest{Rational(1, 3), Rational(2, 3), Rational{0}};
  const std::vector<Rational> full{Rational(1, 3), Rational(2, 3), Rational{1}};
  EXPECT_EQ(fixed(rest), core::oblivious_winning_probability(full, t));
}

TEST(ObliviousPolynomial, GradientVanishesAtHalfSymbolically) {
  // Corollary 4.2 + Theorem 4.3, fully symbolically: every partial
  // derivative evaluates to zero at alpha = 1/2.
  for (std::uint32_t n = 2; n <= 6; ++n) {
    const Rational t{static_cast<std::int64_t>(n), 3};
    const auto p = core::oblivious_winning_polynomial(n, t);
    const std::vector<Rational> half(n, Rational(1, 2));
    for (std::uint32_t k = 0; k < n; ++k) {
      EXPECT_TRUE(p.partial_derivative(k)(half).is_zero()) << "n=" << n << " k=" << k;
    }
  }
}

TEST(ObliviousPolynomial, Validation) {
  EXPECT_THROW((void)core::oblivious_winning_polynomial(0, Rational{1}),
               std::invalid_argument);
  EXPECT_THROW((void)core::oblivious_winning_polynomial(13, Rational{1}),
               std::invalid_argument);
  EXPECT_TRUE(core::oblivious_winning_polynomial(3, Rational{-1}).is_zero());
}

}  // namespace
}  // namespace ddm::poly
