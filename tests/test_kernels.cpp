// Kernel-equivalence property tests: the Gray-code inclusion-exclusion
// kernels (src/geom/volume.cpp, src/core/nonoblivious.cpp) must agree with
// the naive O(m·2^m) reference implementations kept in
// src/core/reference_kernels.hpp — exactly in Rational arithmetic, to 1e-12
// in double — on randomized inputs. Also pins the Gray-walk bookkeeping
// itself and the batch evaluator's bitwise agreement with single-point calls.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "combinat/subsets.hpp"
#include "core/nonoblivious.hpp"
#include "core/reference_kernels.hpp"
#include "geom/volume.hpp"
#include "prob/rng.hpp"

namespace ddm {
namespace {

using util::Rational;

// Random rational in (0, 1] with denominator <= 64: small enough to keep the
// exact 2^m sums fast, irregular enough to exercise every guard branch.
Rational random_unit_rational(prob::Rng& rng) {
  const auto den = static_cast<std::int64_t>(rng.uniform_below(63) + 2);
  const auto num = static_cast<std::int64_t>(rng.uniform_below(static_cast<std::uint64_t>(den)) + 1);
  return Rational{num, den};
}

TEST(GrayCode, WalkMatchesClosedForm) {
  // The incremental walk the kernels use — flip bit gray_flip_bit(i) of the
  // running mask at step i — must reproduce gray_code(i), and the sign of
  // the visited subset must alternate with i.
  std::uint64_t mask = 0;
  for (std::uint64_t i = 1; i < (std::uint64_t{1} << 12); ++i) {
    mask ^= std::uint64_t{1} << combinat::gray_flip_bit(i);
    EXPECT_EQ(mask, combinat::gray_code(i));
    EXPECT_EQ(combinat::popcount(mask) % 2 == 1, combinat::gray_parity_odd(i));
  }
}

TEST(KernelEquivalence, SimplexBoxVolumeExactMatchesReference) {
  prob::Rng rng{2024};
  for (std::size_t m = 1; m <= 9; ++m) {
    for (int rep = 0; rep < 3; ++rep) {
      std::vector<Rational> sigma;
      std::vector<Rational> pi;
      for (std::size_t l = 0; l < m; ++l) {
        sigma.push_back(random_unit_rational(rng) + Rational(1, 2));
        pi.push_back(random_unit_rational(rng));
      }
      EXPECT_EQ(geom::simplex_box_volume(sigma, pi), reference::simplex_box_volume(sigma, pi))
          << "m=" << m << " rep=" << rep;
    }
  }
}

TEST(KernelEquivalence, SimplexBoxVolumeDoubleMatchesReference) {
  prob::Rng rng{77};
  for (std::size_t m = 1; m <= 12; ++m) {
    for (int rep = 0; rep < 4; ++rep) {
      std::vector<double> sigma(m);
      std::vector<double> pi(m);
      for (std::size_t l = 0; l < m; ++l) {
        sigma[l] = 0.5 + rng.uniform();
        pi[l] = 0.05 + 0.95 * rng.uniform();
      }
      const double fast = geom::simplex_box_volume_double(sigma, pi);
      const double naive = reference::simplex_box_volume_double(sigma, pi);
      EXPECT_NEAR(fast, naive, 1e-12) << "m=" << m << " rep=" << rep;
    }
  }
}

TEST(KernelEquivalence, GeneralThresholdExactMatchesReference) {
  prob::Rng rng{5150};
  for (std::size_t n = 1; n <= 5; ++n) {
    for (int rep = 0; rep < 2; ++rep) {
      std::vector<Rational> a;
      for (std::size_t i = 0; i < n; ++i) a.push_back(random_unit_rational(rng));
      const Rational t{static_cast<std::int64_t>(1 + rng.uniform_below(2 * n)),
                       static_cast<std::int64_t>(3)};
      EXPECT_EQ(core::threshold_winning_probability(a, t),
                reference::threshold_winning_probability(a, t))
          << "n=" << n << " rep=" << rep;
    }
  }
}

TEST(KernelEquivalence, GeneralThresholdExactHandlesBoundaryThresholds) {
  // Thresholds at 0 and 1 drive whole brackets through their guard branches.
  const std::vector<Rational> corner{Rational{1}, Rational{1}, Rational{0}, Rational{0}};
  const Rational t{4, 3};
  EXPECT_EQ(core::threshold_winning_probability(corner, t),
            reference::threshold_winning_probability(corner, t));
  EXPECT_EQ(core::threshold_winning_probability(corner, t), Rational(49, 81));
}

TEST(KernelEquivalence, GeneralThresholdDoubleMatchesReference) {
  // Agreement is to 1e-12 wherever the NAIVE reference is itself that
  // accurate. Its ones brackets sum O(2^n) cancelling terms of magnitude up
  // to (n - t)^n / n! without compensation, so for n >= 10 the reference
  // carries up to ~2^n * eps * max(t, n-t)^n / n! of its own rounding noise
  // (a long-double probe confirms the Gray/Kahan kernel is the tighter of
  // the two there — see docs/performance.md); widen the tolerance to that
  // analytic floor where it exceeds 1e-12.
  prob::Rng rng{31337};
  for (std::size_t n = 1; n <= 12; n += (n < 8 ? 1 : 2)) {
    for (int rep = 0; rep < 2; ++rep) {
      std::vector<double> a(n);
      for (double& x : a) x = rng.uniform();
      const double t = static_cast<double>(n) * (0.15 + 0.5 * rng.uniform());
      const double fast = core::threshold_winning_probability(a, t);
      const double naive = reference::threshold_winning_probability(a, t);
      const double spread = std::max(t, static_cast<double>(n) - t);
      const double reference_noise =
          std::ldexp(1.0, static_cast<int>(n)) * 2.3e-16 *
          std::pow(spread, static_cast<double>(n)) *
          combinat::inverse_factorial_double(static_cast<std::uint32_t>(n));
      EXPECT_NEAR(fast, naive, std::max(1e-12, reference_noise))
          << "n=" << n << " rep=" << rep << " t=" << t;
      EXPECT_GE(fast, -1e-12);
      EXPECT_LE(fast, 1.0 + 1e-12);
    }
  }
}

TEST(KernelEquivalence, GeneralThresholdDoubleLargeCapacity) {
  // For t near n/2 the brackets sum O(2^n) cancelling terms of magnitude
  // t^n, so the NAIVE reference itself carries ~2^n·eps·t^n/n! of rounding
  // noise (the Gray kernel is Kahan-compensated and tighter). Compare at a
  // tolerance scaled to that noise floor rather than pretending either side
  // is exact to 1e-12 here.
  prob::Rng rng{90210};
  for (std::size_t n = 8; n <= 12; n += 2) {
    std::vector<double> a(n);
    for (double& x : a) x = rng.uniform();
    const double t = 0.5 * static_cast<double>(n);
    const double fast = core::threshold_winning_probability(a, t);
    const double naive = reference::threshold_winning_probability(a, t);
    const double noise_floor =
        std::ldexp(1.0, static_cast<int>(n)) * 1e-16 *
        std::pow(t, static_cast<double>(n)) *
        combinat::inverse_factorial_double(static_cast<std::uint32_t>(n));
    EXPECT_NEAR(fast, naive, std::max(1e-12, 64.0 * noise_floor)) << "n=" << n;
  }
}

TEST(KernelEquivalence, DoubleTracksExactEvaluator) {
  // Independent of the reference loops: the double Gray kernel against the
  // exact Rational Gray kernel on a shared grid.
  const Rational t{4, 3};
  for (int num = 0; num <= 8; ++num) {
    const std::vector<Rational> a(4, Rational{num, 8});
    const std::vector<double> a_d(4, static_cast<double>(num) / 8.0);
    EXPECT_NEAR(core::threshold_winning_probability(a_d, t.to_double()),
                core::threshold_winning_probability(a, t).to_double(), 1e-12)
        << "beta=" << num << "/8";
  }
}

TEST(BatchEvaluator, BitwiseMatchesSinglePointCalls) {
  std::vector<std::vector<double>> points;
  for (int k = 0; k <= 32; ++k) {
    points.push_back(std::vector<double>(5, static_cast<double>(k) / 32.0));
  }
  points.push_back({0.1, 0.9, 0.4, 0.6, 0.5});
  const std::vector<double> batch = core::threshold_winning_probability_batch(points, 5.0 / 3.0);
  ASSERT_EQ(batch.size(), points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    EXPECT_EQ(batch[p], core::threshold_winning_probability(points[p], 5.0 / 3.0)) << p;
  }
}

TEST(BatchEvaluator, PropagatesValidationErrors) {
  const std::vector<std::vector<double>> points{std::vector<double>{}};
  EXPECT_THROW((void)core::threshold_winning_probability_batch(points, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace ddm
