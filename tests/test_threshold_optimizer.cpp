// Tests for the derivative-free threshold search (scope check of
// Theorem 5.2's symmetry/interior claims).
#include "core/threshold_optimizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "core/nonoblivious.hpp"
#include "core/symmetric_threshold.hpp"

namespace ddm::core {
namespace {

using util::Rational;

TEST(SymmetricSearch, ReproducesPaperOptimumN3) {
  const ThresholdSearchResult result = maximize_symmetric_threshold(3, 1.0);
  EXPECT_NEAR(result.thresholds[0], 1.0 - std::sqrt(1.0 / 7.0), 1e-6);
  EXPECT_NEAR(result.value, 0.544631, 1e-6);
  EXPECT_EQ(result.thresholds.size(), 3u);
}

TEST(SymmetricSearch, ReproducesPaperOptimumN4) {
  const ThresholdSearchResult result = maximize_symmetric_threshold(4, 4.0 / 3.0);
  EXPECT_NEAR(result.thresholds[0], 0.678, 5e-4);
  EXPECT_NEAR(result.value, 0.428539, 1e-5);
}

TEST(SymmetricSearch, MatchesSymbolicOptimumAcrossN) {
  for (std::uint32_t n = 2; n <= 6; ++n) {
    const Rational t{static_cast<std::int64_t>(n), 3};
    const auto symbolic = SymmetricThresholdAnalysis::build(n, t).optimize();
    const auto numeric = maximize_symmetric_threshold(n, t.to_double());
    EXPECT_NEAR(numeric.thresholds[0], symbolic.beta.approx(), 1e-6) << "n=" << n;
    EXPECT_NEAR(numeric.value, symbolic.value.to_double(), 1e-9) << "n=" << n;
  }
}

TEST(SymmetricSearch, Validation) {
  EXPECT_THROW((void)maximize_symmetric_threshold(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)maximize_symmetric_threshold(3, 1.0, 0.5, -1.0), std::invalid_argument);
}

TEST(FullSearch, FromSymmetricStartStaysNearSymmetricOptimum) {
  // Starting ON the diagonal at the symmetric optimum, compass moves along
  // single axes can still escape if an asymmetric improvement exists — for
  // n = 3, t = 1 we verify empirically what the search finds is at least as
  // good as the symmetric optimum.
  const auto symbolic = SymmetricThresholdAnalysis::build(3, Rational{1}).optimize();
  const ThresholdSearchResult result =
      maximize_thresholds(std::vector<double>(3, symbolic.beta.approx()), 1.0);
  EXPECT_GE(result.value, symbolic.value.to_double() - 1e-12);
}

TEST(FullSearch, FindsIdentityCornersFromAsymmetricStart) {
  // Scope of Theorem 5.2: with distinct player identities available, the
  // search escapes to corner protocols. From a strongly asymmetric start at
  // n = 4, t = 4/3 it must end at least as high as the deterministic 2-2
  // split, thresholds (1,1,0,0), whose value IH_2(4/3)^2 = (7/9)^2 = 49/81
  // crushes the symmetric optimum 0.4285.
  const ThresholdSearchResult result =
      maximize_thresholds(std::vector<double>{0.95, 0.9, 0.1, 0.05}, 4.0 / 3.0);
  EXPECT_GE(result.value, 49.0 / 81.0 - 1e-9);
}

TEST(FullSearch, CornerSplitValueExact) {
  // The 2-2 identity split at n = 4, t = 4/3 evaluated through Theorem 5.1.
  const std::vector<Rational> corner{Rational{1}, Rational{1}, Rational{0}, Rational{0}};
  EXPECT_EQ(threshold_winning_probability(corner, Rational(4, 3)), Rational(49, 81));
}

TEST(FullSearch, NeverReturnsWorseThanStart) {
  const std::vector<double> start{0.3, 0.7, 0.5};
  const double initial = threshold_winning_probability(start, 1.0);
  const ThresholdSearchResult result = maximize_thresholds(start, 1.0);
  EXPECT_GE(result.value, initial);
  EXPECT_GT(result.evaluations, 0u);
  EXPECT_LT(result.final_step, 1e-9);
}

TEST(FullSearch, ClampsIntoUnitBox) {
  const ThresholdSearchResult result =
      maximize_thresholds(std::vector<double>{-0.3, 1.8}, 1.0);
  for (const double a : result.thresholds) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(FullSearch, Validation) {
  EXPECT_THROW((void)maximize_thresholds(std::vector<double>{}, 1.0), std::invalid_argument);
  EXPECT_THROW((void)maximize_thresholds(std::vector<double>(20, 0.5), 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)maximize_thresholds(std::vector<double>{0.5}, 1.0, -0.1),
               std::invalid_argument);
}

TEST(FullSearch, RespectsEvaluationBudget) {
  const ThresholdSearchResult result =
      maximize_thresholds(std::vector<double>(4, 0.3), 4.0 / 3.0, 0.25, 1e-10, 50);
  EXPECT_LE(result.evaluations, 50u);
}

// Serial re-implementation of the compass loop, probe by probe through the
// single-point evaluator — the behaviour maximize_thresholds had before its
// probes were batched through threshold_winning_probability_batch. The
// production search must reproduce the same accepted iterate sequence
// bitwise: probe values are batch-kernel outputs, which are bitwise equal to
// single-point calls, so acceptance decisions cannot diverge.
ThresholdSearchResult serial_compass_reference(std::vector<double> start, double t,
                                               double initial_step, double tolerance,
                                               std::uint32_t max_evaluations,
                                               std::vector<std::vector<double>>& accepted) {
  for (double& a : start) a = std::clamp(a, 0.0, 1.0);
  ThresholdSearchResult result;
  result.thresholds = std::move(start);
  result.value = threshold_winning_probability(result.thresholds, t);
  result.evaluations = 1;
  double step = initial_step;
  struct Probe {
    std::size_t axis;
    double candidate;
    double value;
  };
  std::vector<Probe> probes;
  while (step >= tolerance && result.evaluations < max_evaluations) {
    probes.clear();
    for (std::size_t i = 0; i < result.thresholds.size(); ++i) {
      for (const double direction : {+1.0, -1.0}) {
        const double original = result.thresholds[i];
        const double candidate = std::clamp(original + direction * step, 0.0, 1.0);
        if (candidate != original) probes.push_back({i, candidate, 0.0});
      }
    }
    const std::size_t budget = max_evaluations - result.evaluations;
    if (probes.size() > budget) probes.resize(budget);
    if (probes.empty()) break;
    std::vector<double> point(result.thresholds);
    for (Probe& probe : probes) {
      point[probe.axis] = probe.candidate;
      probe.value = threshold_winning_probability(point, t);
      point[probe.axis] = result.thresholds[probe.axis];
    }
    result.evaluations += static_cast<std::uint32_t>(probes.size());
    const Probe* best = &probes[0];
    for (const Probe& probe : probes) {
      if (probe.value > best->value) best = &probe;
    }
    if (best->value > result.value) {
      result.thresholds[best->axis] = best->candidate;
      result.value = best->value;
      accepted.push_back(result.thresholds);
    } else {
      step *= 0.5;
    }
  }
  result.final_step = step;
  return result;
}

TEST(FullSearch, BatchedProbesReproduceSerialIterateSequenceBitwise) {
  const struct {
    std::vector<double> start;
    double t;
    double step;
    double tolerance;
    std::uint32_t budget;
  } cases[] = {
      {{0.3, 0.7, 0.5}, 1.0, 0.25, 1e-8, 100000},
      {std::vector<double>(4, 0.3), 4.0 / 3.0, 0.25, 1e-10, 50},
      {{0.95, 0.9, 0.1, 0.05}, 4.0 / 3.0, 0.25, 1e-6, 100000},
      {std::vector<double>(5, 0.62), 5.0 / 3.0, 0.125, 1e-7, 100000},
  };
  for (const auto& c : cases) {
    std::vector<std::vector<double>> accepted;
    const ThresholdSearchResult reference =
        serial_compass_reference(c.start, c.t, c.step, c.tolerance, c.budget, accepted);
    const ThresholdSearchResult batched =
        maximize_thresholds(c.start, c.t, c.step, c.tolerance, c.budget);
    EXPECT_EQ(batched.thresholds, reference.thresholds);
    EXPECT_EQ(batched.value, reference.value);
    EXPECT_EQ(batched.evaluations, reference.evaluations);
    EXPECT_EQ(batched.final_step, reference.final_step);
    // Replaying the batched search against the recorded accepted iterates
    // requires identical probe values at every acceptance, so any bitwise
    // divergence along the path (not just at the end) fails above; the
    // recorded sequence also documents that acceptances actually happened.
    EXPECT_FALSE(accepted.empty());
  }
}

// Parameterized: the symmetric search value never exceeds (and the full
// search never falls below) the certified symbolic optimum on the diagonal.
class SearchConsistency : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SearchConsistency, SymbolicBracketsNumeric) {
  const std::uint32_t n = GetParam();
  const Rational t{static_cast<std::int64_t>(n), 3};
  const auto symbolic = SymmetricThresholdAnalysis::build(n, t).optimize();
  const auto symmetric_numeric = maximize_symmetric_threshold(n, t.to_double());
  EXPECT_LE(symmetric_numeric.value, symbolic.value.to_double() + 1e-9);
  const auto full = maximize_thresholds(
      std::vector<double>(n, symmetric_numeric.thresholds[0]), t.to_double());
  EXPECT_GE(full.value, symbolic.value.to_double() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ns, SearchConsistency, ::testing::Values(2u, 3u, 4u, 5u, 6u),
                         [](const auto& info) { return "n" + std::to_string(info.param); });

}  // namespace
}  // namespace ddm::core
