// Tests for randomized step rules — the general anonymous randomized class
// containing both the oblivious protocols (Section 4) and the deterministic
// thresholds (Section 5).
#include "core/randomized_rules.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/interval_rules.hpp"
#include "core/nonoblivious.hpp"
#include "core/oblivious.hpp"
#include "prob/rng.hpp"
#include "sim/monte_carlo.hpp"

namespace ddm::core {
namespace {

using util::Rational;

TEST(StepRule, Validation) {
  // Must cover [0,1] exactly with increasing endpoints and p in [0,1].
  EXPECT_THROW(StepRule{std::vector<StepRule::Step>{}}, std::invalid_argument);
  EXPECT_THROW(StepRule({{Rational(1, 2), Rational(1, 2)}}), std::invalid_argument);
  EXPECT_THROW(StepRule({{Rational{1}, Rational{2}}}), std::invalid_argument);
  EXPECT_THROW(StepRule({{Rational(1, 2), Rational{1}}, {Rational(1, 2), Rational{0}}}),
               std::invalid_argument);
  EXPECT_NO_THROW(StepRule({{Rational(1, 2), Rational(1, 3)}, {Rational{1}, Rational(2, 3)}}));
}

TEST(StepRule, Factories) {
  const StepRule coin = StepRule::oblivious(Rational(1, 2));
  EXPECT_EQ(coin.cell_count(), 1u);
  EXPECT_EQ(coin.marginal_p0(), Rational(1, 2));

  const StepRule thr = StepRule::threshold(Rational(3, 5));
  EXPECT_EQ(thr.cell_count(), 2u);
  EXPECT_EQ(thr.p0_at(Rational(1, 2)), Rational{1});
  EXPECT_EQ(thr.p0_at(Rational(4, 5)), Rational{0});
  EXPECT_EQ(thr.marginal_p0(), Rational(3, 5));
  EXPECT_EQ(StepRule::threshold(Rational{0}).cell_count(), 1u);
  EXPECT_EQ(StepRule::threshold(Rational{1}).cell_count(), 1u);

  const std::vector<Rational> probs{Rational{1}, Rational(1, 2), Rational{0}};
  const StepRule grid = StepRule::uniform_grid(probs);
  EXPECT_EQ(grid.cell_count(), 3u);
  EXPECT_EQ(grid.steps()[0].hi, Rational(1, 3));
  EXPECT_EQ(grid.marginal_p0(), Rational(1, 2));
  EXPECT_THROW((void)grid.p0_at(Rational{2}), std::out_of_range);
}

TEST(StepRules, ObliviousCaseMatchesTheorem41) {
  // Every player a coin with its own bias: must equal the oblivious engine.
  const std::vector<Rational> alpha{Rational(1, 3), Rational(2, 5), Rational(1, 2),
                                    Rational(7, 9)};
  std::vector<StepRule> rules;
  for (const Rational& a : alpha) rules.push_back(StepRule::oblivious(a));
  for (int i = 1; i <= 8; ++i) {
    const Rational t{i, 3};
    EXPECT_EQ(step_rules_winning_probability(rules, t),
              oblivious_winning_probability(alpha, t))
        << "t=" << t;
  }
}

TEST(StepRules, ThresholdCaseMatchesTheorem51) {
  const std::vector<Rational> thresholds{Rational(3, 5), Rational(1, 2), Rational(7, 10)};
  std::vector<StepRule> rules;
  for (const Rational& a : thresholds) rules.push_back(StepRule::threshold(a));
  for (int i = 1; i <= 8; ++i) {
    const Rational t{i, 4};
    EXPECT_EQ(step_rules_winning_probability(rules, t),
              threshold_winning_probability(thresholds, t))
        << "t=" << t;
  }
}

TEST(StepRules, DeterministicGridMatchesIntervalRules) {
  // A 0/1 step rule is an interval rule; the two evaluators must agree.
  const std::vector<Rational> probs{Rational{1}, Rational{0}, Rational{1}, Rational{0}};
  const std::vector<StepRule> step_rules(3, StepRule::uniform_grid(probs));
  const std::vector<IntervalRule> interval_rules(
      3, IntervalRule{{UnitInterval{Rational{0}, Rational(1, 4)},
                       UnitInterval{Rational(1, 2), Rational(3, 4)}}});
  for (int i = 1; i <= 6; ++i) {
    const Rational t{i, 4};
    EXPECT_EQ(step_rules_winning_probability(step_rules, t),
              interval_rules_winning_probability(interval_rules, t))
        << "t=" << t;
  }
}

TEST(StepRules, MixedProfileMatchesMonteCarlo) {
  const std::vector<StepRule> rules{
      StepRule::oblivious(Rational(2, 5)),
      StepRule::threshold(Rational(3, 5)),
      StepRule::uniform_grid(std::vector<Rational>{Rational{1}, Rational(1, 2), Rational{0}})};
  const double exact = step_rules_winning_probability(rules, Rational{1}).to_double();
  const StepRuleProtocol protocol{rules};
  prob::Rng rng{98765};
  const auto result = sim::estimate_winning_probability(protocol, 1.0, 400000, rng);
  EXPECT_NEAR(result.estimate, exact, 5.0 * result.standard_error + 1e-9);
}

TEST(StepRules, DoubleMatchesExact) {
  const std::vector<StepRule> rules{
      StepRule::uniform_grid(std::vector<Rational>{Rational(1, 3), Rational(3, 4)}),
      StepRule::threshold(Rational(1, 2)),
      StepRule::oblivious(Rational(1, 4))};
  for (int i = 1; i <= 8; ++i) {
    const Rational t{i, 4};
    EXPECT_NEAR(step_rules_winning_probability(rules, t.to_double()),
                step_rules_winning_probability(rules, t).to_double(), 1e-12)
        << "t=" << t;
  }
}

TEST(StepRules, SymmetricEvaluatorMatchesGeneral) {
  // The multinomial collapse must agree with the general odometer evaluator
  // (exact and double paths) across rules, n, and capacities.
  const std::vector<StepRule> rules{
      StepRule::oblivious(Rational(1, 2)),
      StepRule::threshold(Rational(3, 5)),
      StepRule::uniform_grid(std::vector<Rational>{Rational{1}, Rational(1, 3), Rational{0}}),
      StepRule::uniform_grid(
          std::vector<Rational>{Rational(3, 4), Rational(1, 4), Rational(1, 2), Rational{1}})};
  for (const StepRule& rule : rules) {
    for (std::uint32_t n = 1; n <= 5; ++n) {
      const std::vector<StepRule> profile(n, rule);
      for (int i = 1; i <= 6; ++i) {
        const Rational t{i, 3};
        EXPECT_EQ(symmetric_step_rule_winning_probability(n, rule, t),
                  step_rules_winning_probability(profile, t))
            << "n=" << n << " t=" << t << " rule=" << rule.to_string();
        EXPECT_NEAR(symmetric_step_rule_winning_probability(n, rule, t.to_double()),
                    step_rules_winning_probability(profile, t.to_double()), 1e-12)
            << "n=" << n << " t=" << t;
      }
    }
  }
}

TEST(StepRules, SymmetricEvaluatorScalesToLargerN) {
  // The collapse handles n well beyond the general evaluator's reach; sanity
  // bounds plus agreement with the O(n^2) oblivious engine on a coin rule.
  const StepRule coin = StepRule::oblivious(Rational(1, 2));
  for (std::uint32_t n : {8u, 10u, 12u}) {
    const Rational t{static_cast<std::int64_t>(n), 3};
    const std::vector<Rational> alpha(n, Rational(1, 2));
    EXPECT_EQ(symmetric_step_rule_winning_probability(n, coin, t),
              oblivious_winning_probability(alpha, t))
        << "n=" << n;
  }
}

TEST(StepRules, CoinBeatsDeterministicThresholdAtN4) {
  // The D2 anomaly inside one class: among anonymous step rules at n = 4,
  // t = 4/3, the coin (randomized) beats the best deterministic threshold.
  const std::vector<StepRule> coins(4, StepRule::oblivious(Rational(1, 2)));
  const Rational coin_value = step_rules_winning_probability(coins, Rational(4, 3));
  EXPECT_EQ(coin_value, Rational(559, 1296));
  const std::vector<StepRule> thresholds(
      4, StepRule::threshold(Rational(678, 1000)));
  EXPECT_GT(coin_value, step_rules_winning_probability(thresholds, Rational(4, 3)));
}

TEST(StepRules, NonMonotoneRandomizedRuleBeatsBothClassesAtN4) {
  // Pinned finding (EXPERIMENTS.md A3): at n = 4, t = 4/3 the anonymous
  // 4-cell rule p = (0, 0.83, 1, 0) — deterministic non-monotone cells plus
  // one randomized cell — achieves ~0.46961, beating BOTH the optimal coin
  // (559/1296 ~ 0.43133) and the optimal deterministic symmetric threshold
  // (~0.42854). Verified here exactly and by Monte Carlo elsewhere.
  const StepRule rule = StepRule::uniform_grid(std::vector<Rational>{
      Rational{0}, Rational{83, 100}, Rational{1}, Rational{0}});
  const Rational value =
      symmetric_step_rule_winning_probability(4, rule, Rational(4, 3));
  EXPECT_GT(value, Rational(559, 1296));
  EXPECT_NEAR(value.to_double(), 0.469609, 1e-6);
  const std::vector<Rational> alpha(4, Rational(1, 2));
  EXPECT_GT(value, oblivious_winning_probability(alpha, Rational(4, 3)));
}

TEST(StepRules, OptimizerFindsCoinLikeRuleAtN4) {
  // Compass search over 3-cell symmetric randomized rules at n = 4, t = 4/3
  // must do at least as well as both the coin and the best threshold.
  const StepRuleSearchResult result = maximize_symmetric_step_rule(
      4, 4.0 / 3.0, 3, std::vector<double>{0.5, 0.5, 0.5});
  EXPECT_GE(result.value, 559.0 / 1296.0 - 1e-9);
  EXPECT_GE(result.value, 0.428539);  // the deterministic symmetric optimum
}

TEST(StepRules, OptimizerReproducesThresholdAtN3) {
  // At n = 3, t = 1 the deterministic threshold is optimal among the probed
  // class; a 4-cell randomized search should approach 0.5446 from below and
  // beat the coin 5/12.
  const StepRuleSearchResult result = maximize_symmetric_step_rule(
      3, 1.0, 4, std::vector<double>{1.0, 1.0, 0.0, 0.0});
  EXPECT_GT(result.value, 5.0 / 12.0);
  EXPECT_LE(result.value, 0.544632);
}

TEST(StepRules, Validation) {
  EXPECT_THROW((void)step_rules_winning_probability(std::vector<StepRule>{}, Rational{1}),
               std::invalid_argument);
  const std::vector<StepRule> rules(2, StepRule::oblivious(Rational(1, 2)));
  EXPECT_EQ(step_rules_winning_probability(rules, Rational{0}), Rational{0});
  EXPECT_THROW((void)maximize_symmetric_step_rule(0, 1.0, 2, {0.5, 0.5}),
               std::invalid_argument);
  EXPECT_THROW((void)maximize_symmetric_step_rule(3, 1.0, 2, {0.5}), std::invalid_argument);
}

TEST(StepRuleProtocol, SimulatorAdapter) {
  const std::vector<StepRule> rules{StepRule::threshold(Rational(1, 2)),
                                    StepRule::oblivious(Rational{1})};
  const StepRuleProtocol protocol{rules};
  prob::Rng rng{3};
  EXPECT_EQ(protocol.size(), 2u);
  EXPECT_EQ(protocol.decide(0, 0.4, rng), kBin0);
  EXPECT_EQ(protocol.decide(0, 0.6, rng), kBin1);
  EXPECT_EQ(protocol.decide(1, 0.9, rng), kBin0);  // p0 = 1 everywhere
  EXPECT_THROW((void)protocol.decide(9, 0.5, rng), std::out_of_range);
  EXPECT_THROW(StepRuleProtocol{std::vector<StepRule>{}}, std::invalid_argument);
}

// Parameterized: for symmetric two-cell rules with p = (p1, p2), the winning
// probability is bounded by the class optimum and matches the oblivious
// engine when p1 == p2.
class TwoCellSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TwoCellSweep, ConsistentWithOblivious) {
  const auto [p1_num, p2_num] = GetParam();
  const Rational p1{p1_num, 4};
  const Rational p2{p2_num, 4};
  const std::vector<StepRule> rules(
      3, StepRule::uniform_grid(std::vector<Rational>{p1, p2}));
  const Rational value = step_rules_winning_probability(rules, Rational{1});
  EXPECT_GE(value, Rational{0});
  EXPECT_LE(value, Rational{1});
  if (p1 == p2) {
    const std::vector<Rational> alpha(3, p1);
    EXPECT_EQ(value, oblivious_winning_probability(alpha, Rational{1}));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, TwoCellSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Values(0, 1, 2, 3, 4)),
                         [](const auto& info) {
                           return "p" + std::to_string(std::get<0>(info.param)) + "_q" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace ddm::core
