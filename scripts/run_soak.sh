#!/usr/bin/env bash
# run_soak.sh — end-to-end soak of the ddm_serve daemon, registered as the
# ctest `serve_soak_check` (tools/CMakeLists.txt). Proves the serving
# contract under stress from the OUTSIDE:
#
#   * saturation: a tiny admission queue under concurrent clients sheds load
#     with structured `overloaded` replies — and NOTHING hangs (ddm_load
#     counts a socket timeout as a protocol failure);
#   * degradation: an injected fault plan (DDM_FAULT_PLAN) makes the
#     preferred engine fail, and the answers come back `degraded:true`
#     instead of erroring — with the shed/degraded counters visible on the
#     Prometheus /metrics endpoint;
#   * deadlines: a Monte Carlo burst under a 50 ms budget yields only typed
#     `deadline_exceeded` replies — cut mid-evaluation, never hung;
#   * drain: SIGTERM stops admission, answers queued work, and exits 0;
#   * crash tolerance: kill -9 followed by an immediate restart on the SAME
#     port binds (SO_REUSEADDR) and serves again — there is no durable state
#     to recover;
#   * determinism: the same request answered by a DDM_THREADS=1 server and a
#     DDM_THREADS=4 server is byte-identical.
#
# Usage:
#   scripts/run_soak.sh /path/to/ddm_serve /path/to/ddm_load           # checks
#   scripts/run_soak.sh /path/to/ddm_serve /path/to/ddm_load --bench
#       Additionally runs a clean (fault-free) throughput pass and records
#       BENCH_serve.json at the repo root (req/s, p50/p99 latency), following
#       the run_bench.sh convention of committing a perf trajectory.
set -euo pipefail

SERVE="$1"
LOAD="$2"
MODE="${3:-check}"
REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
TMP="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# Starts a server (extra env assignments and flags as arguments), waits for
# the readiness line, and sets SERVER_PID / SERVER_PORT. Runs in the main
# shell (not a substitution) so `wait` can observe the exit status.
start_server() {
  local log="$1"
  shift
  env "$@" "$SERVE" >"$TMP/$log.out" 2>"$TMP/$log.err" &
  SERVER_PID=$!
  PIDS+=("$SERVER_PID")
  local i
  SERVER_PORT=""
  for i in $(seq 1 100); do
    SERVER_PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$TMP/$log.out")"
    [ -n "$SERVER_PORT" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null \
      || fail "server '$log' died at startup: $(cat "$TMP/$log.err")"
    sleep 0.1
  done
  [ -n "$SERVER_PORT" ] || fail "server '$log' never printed its listening line"
}

# Sends one NDJSON line and echoes the single reply line (10 s guard).
send_request() {
  local port="$1" line="$2" reply
  exec 3<>"/dev/tcp/127.0.0.1/$port" || fail "connect to port $port failed"
  printf '%s\n' "$line" >&3
  IFS= read -r -t 10 reply <&3 || fail "no reply within 10s for: $line"
  exec 3<&- 3>&-
  printf '%s\n' "$reply"
}

# Extracts a numeric field from a flat JSON line (the ddm_load summary).
field() {
  printf '%s' "$1" | sed -n 's/.*"'"$2"'":\([0-9][0-9.eE+-]*\).*/\1/p'
}

# --- saturation + degradation under injected faults ----------------------
# Tiny queue, one worker, and a fault plan that outlasts every retry layer
# in front of the first evaluation's fallback: auto's select-time lowering
# probe eats one throw, then each batch-region attempt absorbs up to 3 via
# in-region retries and the service grants one request-level retry (1 + 3 +
# 3 = 7; 9 leaves margin), so the first threshold evaluation must walk the
# degradation chain; meanwhile the concurrent clients must overflow the
# queue. Nothing may hang or fail the protocol.
start_server soak1 DDM_FAULT_PLAN=throw@0x9 DDM_SERVE_QUEUE=2 DDM_SERVE_WORKERS=1
pid1=$SERVER_PID port1=$SERVER_PORT
summary="$("$LOAD" "$port1" 12 25 --n=12 --t=4)" || fail "soak load failed: $summary"
echo "soak: $summary"
[ "$(field "$summary" failed)" = "0" ] || fail "protocol failures under saturation: $summary"
[ "$(field "$summary" answered)" = "300" ] || fail "not every request was answered: $summary"
shed="$(field "$summary" shed)"
degraded="$(field "$summary" degraded)"
[ "$shed" -gt 0 ] || fail "tiny queue never shed load: $summary"
[ "$degraded" -gt 0 ] || fail "injected fault plan produced no degraded answers: $summary"

# The health and metrics endpoints answer on the same port, and the shed /
# degraded counters that ddm_load saw from the outside are visible there.
health="$(send_request "$port1" '{"op":"health"}')"
case "$health" in
  *'"ok":true'*) ;;
  *) fail "health reply unexpected: $health" ;;
esac
exec 3<>"/dev/tcp/127.0.0.1/$port1"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
cat <&3 >"$TMP/metrics.txt"
exec 3<&- 3>&-
grep -q '^serve_requests' "$TMP/metrics.txt" || fail "/metrics lacks serve_requests"
metric_shed="$(awk '$1 == "serve_shed" { print $2 }' "$TMP/metrics.txt")"
metric_degraded="$(awk '$1 == "serve_degraded" { print $2 }' "$TMP/metrics.txt")"
[ "${metric_shed:-0}" -gt 0 ] || fail "/metrics serve_shed is not positive: $metric_shed"
[ "${metric_degraded:-0}" -gt 0 ] || fail "/metrics serve_degraded is not positive: $metric_degraded"

# --- deadline cuts --------------------------------------------------------
# Monte Carlo under a 50 ms budget: 50M trials are thousands of trial blocks
# (~seconds of work) and the parallel engine polls the deadline at every
# block claim, so each request must come back as a typed `deadline_exceeded`
# — mc is the chain tail, there is nothing to degrade to. A hang would trip
# the ddm_load timeout and fail.
deadline_summary="$("$LOAD" "$port1" 1 3 --engine=mc --n=10 --t=3 \
  --deadline-ms=50 --trials=50000000)" || fail "deadline burst failed: $deadline_summary"
echo "deadline: $deadline_summary"
[ "$(field "$deadline_summary" failed)" = "0" ] || fail "deadline burst had protocol failures"
[ "$(field "$deadline_summary" deadline)" = "3" ] \
  || fail "50ms mc burst was not cut by its deadline: $deadline_summary"

# --- graceful drain -------------------------------------------------------
kill -TERM "$pid1"
rc=0
wait "$pid1" || rc=$?
[ "$rc" -eq 0 ] || fail "SIGTERM drain exited $rc (stderr: $(cat "$TMP/soak1.err"))"
grep -q "drained, exiting" "$TMP/soak1.err" || fail "drain did not log its completion"

# --- crash tolerance ------------------------------------------------------
# kill -9, then an immediate restart on the SAME port: nothing to fsck, no
# lock files, no recovery protocol — bind (SO_REUSEADDR) and serve.
start_server soak2
pid2=$SERVER_PID port2=$SERVER_PORT
ok_reply="$(send_request "$port2" '{"id":"pre","op":"threshold","n":6,"t":"2","beta":0.5}')"
case "$ok_reply" in
  *'"ok":true'*) ;;
  *) fail "pre-crash request failed: $ok_reply" ;;
esac
{ kill -9 "$pid2" && wait "$pid2"; } 2>/dev/null || true
start_server soak3 DDM_SERVE_PORT="$port2"
pid3=$SERVER_PID port3=$SERVER_PORT
[ "$port3" = "$port2" ] || fail "restart bound port $port3, expected $port2"
post_reply="$(send_request "$port3" '{"id":"post","op":"threshold","n":6,"t":"2","beta":0.5}')"
[ "$post_reply" = "${ok_reply/\"id\":\"pre\"/\"id\":\"post\"}" ] \
  || fail "post-crash reply differs: $ok_reply vs $post_reply"
kill -TERM "$pid3" && wait "$pid3" || fail "restarted server did not drain cleanly"

# --- determinism across server parallelism --------------------------------
request='{"id":"det","op":"threshold","n":10,"t":"3","beta":0.456}'
start_server threads1 DDM_THREADS=1
pid_t1=$SERVER_PID port_t1=$SERVER_PORT
start_server threads4 DDM_THREADS=4
pid_t4=$SERVER_PID port_t4=$SERVER_PORT
reply_t1="$(send_request "$port_t1" "$request")"
reply_t4="$(send_request "$port_t4" "$request")"
[ "$reply_t1" = "$reply_t4" ] \
  || fail "DDM_THREADS=1 vs 4 replies differ: $reply_t1 vs $reply_t4"
kill -TERM "$pid_t1" "$pid_t4"
wait "$pid_t1" && wait "$pid_t4" || fail "thread-identity servers did not drain cleanly"

echo "serve soak checks passed"

# --- optional throughput recording ---------------------------------------
if [ "$MODE" = "--bench" ]; then
  start_server bench DDM_SERVE_WORKERS=2
pid_b=$SERVER_PID port_b=$SERVER_PORT
  # --warmup=5: each client absorbs the remaining cold start (first-touch
  # plan lowering for the benched (n, t), connection setup) before the
  # recorded stream, so p50/p99/max measure steady-state serving.
  bench_summary="$("$LOAD" "$port_b" 4 100 --n=8 --t=3 --warmup=5)" || fail "bench load failed"
  [ "$(field "$bench_summary" failed)" = "0" ] || fail "bench run had protocol failures"
  kill -TERM "$pid_b" && wait "$pid_b" || fail "bench server did not drain cleanly"
  {
    printf '{"benchmark":"ddm_serve","clients":4,"requests_per_client":100,'
    printf '"n":8,"t":"3","workers":2,"warmup_per_client":5,"summary":%s}\n' "$bench_summary"
  } >"$REPO_ROOT/BENCH_serve.json"
  echo "serve bench recorded: $bench_summary"
fi
