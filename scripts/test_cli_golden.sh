#!/usr/bin/env bash
# test_cli_golden.sh — byte-identity pins for the forced-engine CLI surface,
# registered as the ctest `cli_engine_golden` test (tools/CMakeLists.txt).
#
# Each file under tests/golden_cli/ is the pre-engine-layer output of one
# ddm_cli invocation with a pinned evaluation path (--engine=kernel,
# --engine=compiled, or --certify) or a default scalar subcommand. The
# engine-layer refactor is allowed to change how those paths are reached,
# never what they print: every capture must match byte for byte.
#
# Usage: test_cli_golden.sh /path/to/ddm_cli /path/to/tests/golden_cli
set -euo pipefail

CLI="$1"
GOLDEN_DIR="$2"

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# golden file -> exact capture command (argv after the binary).
check() {
  local name="$1"
  shift
  local golden="$GOLDEN_DIR/$name"
  [ -f "$golden" ] || fail "missing golden file $golden"
  local actual
  actual="$("$CLI" "$@")" || fail "'$CLI $*' failed"
  if [ "$actual" != "$(cat "$golden")" ]; then
    diff <(printf '%s\n' "$actual") "$golden" >&2 || true
    fail "'$CLI $*' output differs from $name"
  fi
}

run_checks() {
  check sweep_n3_kernel.txt      sweep 3 1 0 1 12 --engine=kernel
  check sweep_n3_compiled.txt    sweep 3 1 0 1 12 --engine=compiled
  check sweep_n6_compiled.txt    sweep 6 2 0 1 24 --engine=compiled
  check sweep_n12_kernel.txt     sweep 12 4 0 1 8 --engine=kernel
  check sweep_n12_compiled.txt   sweep 12 4 0 1 8 --engine=compiled
  check sweep_n4_certify.txt     sweep 4 4/3 0 1 16 --certify
  check threshold_n3.txt         threshold 3 1 0.622
  check threshold_n24_certify.txt threshold 24 8 3/8 --certify
  check volume_m2.txt            volume 2 1 1 3/4 3/4
  check analyze_n3.txt           analyze 3 1
  check analyze_n4.txt           analyze 4 4/3
  check oblivious_n3.txt         oblivious 3 1
  # Generalized scenarios (engine/scenario.hpp): heterogeneous ranges and
  # adversarial deviation pin the exact generalized evaluators — and the
  # captures above pin that threading the scenario seam through the CLI left
  # every default-scenario byte untouched.
  check threshold_n3_het.txt     threshold 3 1 0.5 --scenario=heterogeneous --ranges=1/2,1,2
  check sweep_n3_het.txt         sweep 3 1 0 1 8 --scenario=heterogeneous:1/2,1,2
  check sweep_n3_dev.txt         sweep 3 1 0 1 8 --scenario=deviating:1
  check threshold_n6_dev_cert.txt threshold 6 2 0.62 --scenario=deviating:2 --certify
  check deviate_n6.txt           deviate 6 2 0.62 2 20000
}

# Every capture must hold under the default (native) SIMD dispatch AND with
# DDM_SIMD=off forcing the pre-SIMD scalar kernels: the vector lanes
# replicate the scalar op sequence bit for bit (util/simd.hpp), so the
# captures are width-independent by construction.
run_checks
CLI_DEFAULT="$CLI"
check() {
  local name="$1"
  shift
  local golden="$GOLDEN_DIR/$name"
  local actual
  actual="$(env DDM_SIMD=off "$CLI_DEFAULT" "$@")" || fail "'DDM_SIMD=off $CLI_DEFAULT $*' failed"
  if [ "$actual" != "$(cat "$golden")" ]; then
    diff <(printf '%s\n' "$actual") "$golden" >&2 || true
    fail "'DDM_SIMD=off $CLI_DEFAULT $*' output differs from $name"
  fi
}
run_checks

# Third pass: a loaded policy table (profile-guided dispatch,
# docs/performance.md §7). Captures that pin a FORCED evaluation path
# (--engine=..., --certify, scalar subcommands) must ignore the model
# completely; the default-dispatch captures keep their static choice because
# a truthful table and the static rule agree where both are defined. Either
# way: byte for byte, with the table loaded through DDM_POLICY.
GOLDEN_TMP="$(mktemp -d)"
trap 'rm -rf "$GOLDEN_TMP"' EXIT
python3 - "$GOLDEN_TMP/policy.ddmpolicy" <<'EOF'
import sys
# A truthful table (realistic cost ordering: compiled plans nanoseconds per
# point, double kernels micro- to milliseconds growing with n).
cells = []
for i, n in enumerate((1, 4, 12, 16)):
    for batch in (1, 16, 256):
        cells.append(f"cell compiled {n} {batch} {4e-09 * (i + 1):.2e}\n")
        cells.append(f"cell batch {n} {batch} {1e-06 * 3**i:.2e}\n")
        cells.append(f"cell kernel {n} {batch} {2e-06 * 3**i:.2e}\n")
body = "ddmpolicy v1\norigin calibrate\nt_regime n/3\n" + "".join(sorted(cells))
h = 14695981039346656037
for b in body.encode():
    h = ((h ^ b) * 1099511628211) % (1 << 64)
with open(sys.argv[1], "w") as f:
    f.write(body + f"checksum {h:016x}\n")
EOF
check() {
  local name="$1"
  shift
  local golden="$GOLDEN_DIR/$name"
  local actual
  actual="$(env DDM_POLICY="$GOLDEN_TMP/policy.ddmpolicy" "$CLI_DEFAULT" "$@")" \
    || fail "'DDM_POLICY=... $CLI_DEFAULT $*' failed"
  if [ "$actual" != "$(cat "$golden")" ]; then
    diff <(printf '%s\n' "$actual") "$golden" >&2 || true
    fail "'DDM_POLICY=... $CLI_DEFAULT $*' output differs from $name"
  fi
}
run_checks

echo "cli golden checks passed"
