#!/usr/bin/env bash
# test_cli_golden.sh — byte-identity pins for the forced-engine CLI surface,
# registered as the ctest `cli_engine_golden` test (tools/CMakeLists.txt).
#
# Each file under tests/golden_cli/ is the pre-engine-layer output of one
# ddm_cli invocation with a pinned evaluation path (--engine=kernel,
# --engine=compiled, or --certify) or a default scalar subcommand. The
# engine-layer refactor is allowed to change how those paths are reached,
# never what they print: every capture must match byte for byte.
#
# Usage: test_cli_golden.sh /path/to/ddm_cli /path/to/tests/golden_cli
set -euo pipefail

CLI="$1"
GOLDEN_DIR="$2"

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# golden file -> exact capture command (argv after the binary).
check() {
  local name="$1"
  shift
  local golden="$GOLDEN_DIR/$name"
  [ -f "$golden" ] || fail "missing golden file $golden"
  local actual
  actual="$("$CLI" "$@")" || fail "'$CLI $*' failed"
  if [ "$actual" != "$(cat "$golden")" ]; then
    diff <(printf '%s\n' "$actual") "$golden" >&2 || true
    fail "'$CLI $*' output differs from $name"
  fi
}

run_checks() {
  check sweep_n3_kernel.txt      sweep 3 1 0 1 12 --engine=kernel
  check sweep_n3_compiled.txt    sweep 3 1 0 1 12 --engine=compiled
  check sweep_n6_compiled.txt    sweep 6 2 0 1 24 --engine=compiled
  check sweep_n12_kernel.txt     sweep 12 4 0 1 8 --engine=kernel
  check sweep_n12_compiled.txt   sweep 12 4 0 1 8 --engine=compiled
  check sweep_n4_certify.txt     sweep 4 4/3 0 1 16 --certify
  check threshold_n3.txt         threshold 3 1 0.622
  check threshold_n24_certify.txt threshold 24 8 3/8 --certify
  check volume_m2.txt            volume 2 1 1 3/4 3/4
  check analyze_n3.txt           analyze 3 1
  check analyze_n4.txt           analyze 4 4/3
  check oblivious_n3.txt         oblivious 3 1
}

# Every capture must hold under the default (native) SIMD dispatch AND with
# DDM_SIMD=off forcing the pre-SIMD scalar kernels: the vector lanes
# replicate the scalar op sequence bit for bit (util/simd.hpp), so the
# captures are width-independent by construction.
run_checks
CLI_DEFAULT="$CLI"
check() {
  local name="$1"
  shift
  local golden="$GOLDEN_DIR/$name"
  local actual
  actual="$(env DDM_SIMD=off "$CLI_DEFAULT" "$@")" || fail "'DDM_SIMD=off $CLI_DEFAULT $*' failed"
  if [ "$actual" != "$(cat "$golden")" ]; then
    diff <(printf '%s\n' "$actual") "$golden" >&2 || true
    fail "'DDM_SIMD=off $CLI_DEFAULT $*' output differs from $name"
  fi
}
run_checks

echo "cli golden checks passed"
