#!/usr/bin/env bash
# run_trace_check.sh — end-to-end validation of the observability layer,
# registered as the ctest `cli_trace_check` test (tools/CMakeLists.txt).
#
# Two contracts are checked:
#
#   1. A traced certified sweep produces well-formed Chrome trace_event JSON
#      (parses, complete "X" events, spans for the parallel chunks / certify
#      tiers / kernels present, and the intervals of every tid nest properly
#      — RAII spans close on the thread that opened them, so any overlap
#      would be an exporter or clock bug).
#
#   2. Tracing is observation only: the numeric output of a sweep is
#      byte-identical with --trace on and off, under DDM_THREADS=1 and 4.
#
# Usage: run_trace_check.sh /path/to/ddm_cli
set -euo pipefail

CLI="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

command -v python3 >/dev/null 2>&1 || {
  # ctest maps this to SKIP_RETURN_CODE 77.
  echo "SKIP: python3 not available" >&2
  exit 77
}

# --- 1. traced certified sweep produces valid, nesting Chrome trace JSON ---
trace="$TMP/sweep_trace.json"
"$CLI" sweep 20 8 0.3 0.45 8 --certify --trace="$trace" > "$TMP/certified.out" \
  || fail "traced certified sweep failed"
[ -s "$trace" ] || fail "trace file is empty"

python3 - "$trace" <<'PY' || fail "trace JSON validation failed"
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

events = doc["traceEvents"]
assert events, "no trace events recorded"

names = set()
by_tid = {}
for e in events:
    assert e["ph"] == "X", f"unexpected phase {e['ph']!r}"
    assert isinstance(e["ts"], (int, float)) and isinstance(e["dur"], (int, float))
    assert e["dur"] >= 0, "negative duration"
    names.add(e["name"])
    by_tid.setdefault(e["tid"], []).append((e["ts"], e["ts"] + e["dur"]))

# The certified sweep must have produced spans at every instrumented layer.
for required in ("cli.sweep", "parallel.chunk", "certify.tier"):
    assert required in names, f"missing span {required!r} (have {sorted(names)})"
assert any(n.startswith("kernel.") for n in names), f"no kernel spans (have {sorted(names)})"

# Per-tid intervals must nest: sweeping the sorted starts with an end-time
# stack, each new interval either fits inside the stack top or starts after
# it ends — a partial overlap is a violation.
for tid, spans in by_tid.items():
    stack = []
    for start, end in sorted(spans):
        while stack and start >= stack[-1]:
            stack.pop()
        if stack and end > stack[-1] + 1e-9:
            raise AssertionError(f"tid {tid}: span [{start}, {end}) overlaps enclosing end {stack[-1]}")
        stack.append(end)

print(f"trace ok: {len(events)} events, {len(by_tid)} threads, {len(names)} span names")
PY

# --- 2. tracing and metrics never perturb the numeric output --------------
for nthreads in 1 4; do
  plain="$(DDM_THREADS=$nthreads "$CLI" sweep 16 6 0.3 0.45 8)"
  traced="$(DDM_THREADS=$nthreads "$CLI" sweep 16 6 0.3 0.45 8 --trace="$TMP/d$nthreads.json")"
  [ "$plain" = "$traced" ] || fail "DDM_THREADS=$nthreads: sweep output differs with --trace"
  metered="$(DDM_THREADS=$nthreads "$CLI" sweep 16 6 0.3 0.45 8 --metrics 2>/dev/null)"
  [ "$plain" = "$metered" ] || fail "DDM_THREADS=$nthreads: sweep output differs with --metrics"
done
one="$(DDM_THREADS=1 "$CLI" sweep 16 6 0.3 0.45 8)"
four="$(DDM_THREADS=4 "$CLI" sweep 16 6 0.3 0.45 8)"
[ "$one" = "$four" ] || fail "sweep output differs between DDM_THREADS=1 and 4"

# --- 3. the compiled engine honours the same observation-only contract ----
for nthreads in 1 4; do
  plain="$(DDM_THREADS=$nthreads "$CLI" sweep 12 4 0.2 0.8 16 --engine=compiled)"
  traced="$(DDM_THREADS=$nthreads "$CLI" sweep 12 4 0.2 0.8 16 --engine=compiled \
            --trace="$TMP/compiled$nthreads.json")"
  [ "$plain" = "$traced" ] || fail "DDM_THREADS=$nthreads: compiled sweep output differs with --trace"
  metered="$(DDM_THREADS=$nthreads "$CLI" sweep 12 4 0.2 0.8 16 --engine=compiled --metrics 2>/dev/null)"
  [ "$plain" = "$metered" ] || fail "DDM_THREADS=$nthreads: compiled sweep output differs with --metrics"
done
one="$(DDM_THREADS=1 "$CLI" sweep 12 4 0.2 0.8 16 --engine=compiled)"
four="$(DDM_THREADS=4 "$CLI" sweep 12 4 0.2 0.8 16 --engine=compiled)"
[ "$one" = "$four" ] || fail "compiled sweep output differs between DDM_THREADS=1 and 4"

# The compiled run's trace must show the pipeline actually engaged: the
# engine layer's selection and cache spans, one lowering span, and the
# grid-evaluation span.
python3 - "$TMP/compiled4.json" <<'PY' || fail "compiled trace span validation failed"
import json, sys

with open(sys.argv[1]) as f:
    names = {e["name"] for e in json.load(f)["traceEvents"]}
for required in ("cli.sweep", "engine.select", "engine.cache",
                 "compiled.lower", "compiled.eval_grid"):
    assert required in names, f"missing span {required!r} (have {sorted(names)})"
assert not any(n.startswith("kernel.") for n in names), \
    f"compiled sweep fell back to the kernel (have {sorted(names)})"
print(f"compiled trace ok: {len(names)} span names")
PY

# --- 4. the engine layer's spans and plan-cache metrics -------------------
# An auto sweep resolves through engine.select and touches the plan cache
# twice in-process (the selection's certificate probe lowers the plan — one
# miss — and the compiled evaluation refetches it — one hit). The exported
# trace must carry both spans with their chosen/hit args, and the metrics
# registry must agree.
auto_trace="$TMP/auto_engine.json"
DDM_THREADS=4 "$CLI" sweep 6 2 0 1 16 --trace="$auto_trace" --metrics \
  > /dev/null 2> "$TMP/auto_engine.metrics" || fail "traced auto sweep failed"
python3 - "$auto_trace" <<'PY' || fail "engine span validation failed"
import json, sys

with open(sys.argv[1]) as f:
    events = json.load(f)["traceEvents"]
selects = [e for e in events if e["name"] == "engine.select"]
caches = [e for e in events if e["name"] == "engine.cache"]
assert selects, "no engine.select span"
assert caches, "no engine.cache span"
assert any(e.get("args", {}).get("chosen") == "compiled" for e in selects), \
    f"engine.select args lack chosen=compiled: {[e.get('args') for e in selects]}"
hits = [e.get("args", {}).get("hit") for e in caches]
assert 0 in hits and 1 in hits, f"expected one cache miss and one hit, got hit args {hits}"
print(f"engine spans ok: {len(selects)} select, {len(caches)} cache")
PY
grep -q "engine.selects 1" "$TMP/auto_engine.metrics" || fail "engine.selects counter missing"
grep -q "engine.cache.misses 1" "$TMP/auto_engine.metrics" || fail "engine.cache.misses != 1"
grep -q "engine.cache.hits 1" "$TMP/auto_engine.metrics" || fail "engine.cache.hits != 1"

# A checkpointed compiled sweep evaluates in blocks of 8: the second and
# third identical requests must hit the cached plan instead of re-lowering.
DDM_THREADS=1 "$CLI" sweep 6 2 0 1 16 --engine=compiled \
  --checkpoint "$TMP/cache.ckpt" --metrics > /dev/null 2> "$TMP/cache.metrics" \
  || fail "checkpointed compiled sweep failed"
grep -q "engine.cache.misses 1" "$TMP/cache.metrics" || fail "blocked sweep re-lowered the plan"
grep -q "engine.cache.hits 2" "$TMP/cache.metrics" \
  || fail "blocked sweep did not hit the plan cache: $(grep engine "$TMP/cache.metrics")"

echo "trace checks passed"
