#!/usr/bin/env bash
# run_sanitizers.sh — build and run the concurrency- and memory-sensitive test
# suites under sanitizers, in two instrumented build trees:
#
#   build-asan  -DDDM_SANITIZE=address   (AddressSanitizer + UBSan)
#   build-tsan  -DDDM_SANITIZE=thread    (ThreadSanitizer)
#
# By default only the suites that exercise the parallel engine, the fault
# harness, certified evaluation, checkpointing, and the SIMD lane-width
# parity matrix are run (they cover the code most likely to harbour races,
# lifetime bugs, or lane over-reads — the parity matrix's ragged grid tails
# are exactly where a vector path would read past the end of an array);
# pass a ctest regex to run a different slice, or '.*' for everything.
#
# Usage: scripts/run_sanitizers.sh [ctest -R regex]
#   scripts/run_sanitizers.sh                 # default robustness slice
#   scripts/run_sanitizers.sh '.*'            # full suite under both sanitizers
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
FILTER="${1:-Parallel|FaultTest|FaultEnv|fault_matrix|fault_env|Certified|Checkpoint|MonteCarlo|Simd|simd_parity}"

run_flavour() {
  local flavour="$1"
  local build_dir="$2"
  echo "=== DDM_SANITIZE=$flavour ($build_dir) ==="
  cmake -B "$build_dir" -S "$REPO_ROOT" -DDDM_SANITIZE="$flavour" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$build_dir" -j "$(nproc)" >/dev/null
  (cd "$build_dir" && ctest -R "$FILTER" --output-on-failure -j "$(nproc)")
}

run_flavour address "$REPO_ROOT/build-asan"
run_flavour thread "$REPO_ROOT/build-tsan"

echo "sanitizer runs passed: address+undefined, thread (filter: $FILTER)"
