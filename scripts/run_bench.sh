#!/usr/bin/env bash
# run_bench.sh — build and run the microbenchmark suite, writing the results
# to BENCH_kernels.json at the repo root so successive PRs accumulate a perf
# trajectory (compare the same benchmark names across commits).
#
# Usage: scripts/run_bench.sh [extra google-benchmark flags...]
#   BUILD_DIR=build-bench scripts/run_bench.sh --benchmark_filter='BM_Simplex.*'
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
OUT="${OUT:-$REPO_ROOT/BENCH_kernels.json}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target perf_kernels -j "$(nproc)" >/dev/null

"$BUILD_DIR/bench/perf_kernels" \
  --benchmark_format=json \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  "$@"

echo "wrote $OUT"
