#!/usr/bin/env bash
# run_bench.sh — build the microbenchmark suite in a dedicated Release tree
# and either re-record the BENCH_kernels.json baseline (default) or check the
# current tree against it (--check).
#
# Usage:
#   scripts/run_bench.sh [extra google-benchmark flags...]
#       Re-record BENCH_kernels.json at the repo root so successive PRs
#       accumulate a perf trajectory (compare the same benchmark names
#       across commits).
#   scripts/run_bench.sh --check [extra google-benchmark flags...]
#       Run the suite into a temp file and compare per-iteration cpu_time
#       against the checked-in baseline, family by family (the BM_* prefix
#       before the first '/'). Exits non-zero when any family's geometric-
#       mean slowdown exceeds 25%, when a vectorized *Simd family is not
#       at least 2x faster (geomean, same args) than its scalar counterpart
#       in the SAME run (docs/performance.md §4), or when the calibrated
#       auto policy fails its dispatch gate (docs/performance.md §7): on the
#       mixed mid-n workload BM_AutoDispatchCalibrated must beat
#       BM_AutoDispatchStatic by >= 1.5x and stay within 10% of
#       BM_AutoDispatchForcedBest. Registered as the opt-in
#       ctest `bench_regression_check` (label `bench`, -DDDM_BENCH_CHECK=ON).
#
# Both modes force CMAKE_BUILD_TYPE=Release in their own build tree
# (BUILD_DIR, default build-bench) — the library AND the benchmark TU come
# out of that same tree — and refuse to use results from a binary whose JSON
# context does not prove an optimised build end to end: the benchmark's
# custom main() stamps `ddm_build_type` from its own NDEBUG and
# `ddm_library_build_type` from ddm::util::build_type() (compiled inside
# libddm, so it certifies the library actually linked, catching a stale or
# mixed-configuration tree), and the guard below requires BOTH to say
# "release". The stock `library_build_type` field is NOT trusted either way
# — it describes how the installed google-benchmark library was compiled
# (debug on this image), not the ddm kernels under test; mistaking it for
# the binary's build type is exactly how a debug baseline got committed
# once.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-bench}"
OUT="${OUT:-$REPO_ROOT/BENCH_kernels.json}"

MODE=record
if [[ "${1:-}" == "--check" ]]; then
  MODE=check
  shift
fi

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target perf_kernels -j "$(nproc)" >/dev/null

TMP="$(mktemp "${TMPDIR:-/tmp}/bench_kernels.XXXXXX.json")"
trap 'rm -f "$TMP"' EXIT

"$BUILD_DIR/bench/perf_kernels" \
  --benchmark_format=console \
  --benchmark_out="$TMP" \
  --benchmark_out_format=json \
  "$@"

# Refuse to trust results unless the context proves an optimised binary.
python3 - "$TMP" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    context = json.load(f)["context"]
ddm_build = context.get("ddm_build_type")
if ddm_build != "release":
    print(f"run_bench.sh: refusing to use results: ddm_build_type is "
          f"{ddm_build!r} (NDEBUG was unset in the benchmark translation "
          f"unit)", file=sys.stderr)
    sys.exit(1)
lib_build = context.get("ddm_library_build_type")
if lib_build != "release":
    print(f"run_bench.sh: refusing to use results: ddm_library_build_type "
          f"is {lib_build!r} (the linked libddm — where the kernels live — "
          f"is not an optimised build)", file=sys.stderr)
    sys.exit(1)
if context.get("library_build_type") != "release":
    print("run_bench.sh: note: the installed google-benchmark library is a "
          "debug build (library_build_type); timer overhead is slightly "
          "higher but the ddm kernels themselves are optimised",
          file=sys.stderr)
EOF

if [[ "$MODE" == "record" ]]; then
  mv "$TMP" "$OUT"
  trap - EXIT
  echo "wrote $OUT"
  exit 0
fi

# --check: compare against the committed baseline, per BM_* family.
python3 - "$OUT" "$TMP" <<'EOF'
import json, math, sys

THRESHOLD = 1.25  # >25% geometric-mean slowdown fails the family

def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = float(b["cpu_time"])
    return out

baseline = load(sys.argv[1])
current = load(sys.argv[2])
shared = sorted(set(baseline) & set(current))
if not shared:
    print("run_bench.sh --check: no benchmark names in common with the "
          "baseline — re-record it first", file=sys.stderr)
    sys.exit(1)

families = {}
for name in shared:
    families.setdefault(name.split("/")[0], []).append(
        current[name] / baseline[name])

failed = []
print(f"{'family':<36} {'geomean new/old':>16}  n")
for family in sorted(families):
    ratios = families[family]
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    flag = ""
    if geomean > THRESHOLD:
        failed.append(family)
        flag = "  REGRESSION"
    print(f"{family:<36} {geomean:>16.3f}  {len(ratios)}{flag}")

missing = sorted({n.split("/")[0] for n in baseline} -
                 {n.split("/")[0] for n in current})
if missing:
    print(f"note: families in baseline but not in this run: {', '.join(missing)}")

if failed:
    print(f"run_bench.sh --check: >25% regression in: {', '.join(failed)}",
          file=sys.stderr)
    sys.exit(1)
print("run_bench.sh --check: all families within 25% of baseline")

# SIMD speedup gate: each vectorized family must beat its scalar counterpart
# by >= 2x (geomean over matching args) WITHIN this run — comparing inside
# one run keeps the gate immune to machine-to-machine drift. The scalar
# families are pinned to width 1 by ScopedForceWidth, so the ratio measures
# lane dispatch alone (the results are bitwise identical either way).
SIMD_SPEEDUP = 2.0
SIMD_PAIRS = {
    "BM_BatchAmortizedSimd": "BM_BatchAmortized",
    "BM_SweepCompiledSimd": "BM_SweepCompiled",
}
simd_failed = []
for simd_family, scalar_family in sorted(SIMD_PAIRS.items()):
    ratios = []
    for name, cpu in current.items():
        if name.split("/")[0] != simd_family:
            continue
        scalar_name = name.replace(simd_family, scalar_family, 1)
        if scalar_name in current and cpu > 0:
            ratios.append(current[scalar_name] / cpu)
    if not ratios:
        print(f"run_bench.sh --check: no {simd_family} results to gate",
              file=sys.stderr)
        simd_failed.append(simd_family)
        continue
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    flag = ""
    if geomean < SIMD_SPEEDUP:
        simd_failed.append(simd_family)
        flag = "  TOO SLOW"
    print(f"{simd_family:<36} {geomean:>13.2f}x vs {scalar_family}{flag}")

if simd_failed:
    print(f"run_bench.sh --check: SIMD families below the {SIMD_SPEEDUP}x "
          f"bar: {', '.join(simd_failed)}", file=sys.stderr)
    sys.exit(1)
print(f"run_bench.sh --check: SIMD families >= {SIMD_SPEEDUP}x their scalar counterparts")

# Profile-guided dispatch gate (docs/performance.md §7), again WITHIN this
# run: on the mixed mid-n workload the calibrated auto policy must beat the
# static auto rule by >= 1.5x (the table reroutes requests the fixed 1e-9
# compiled gate would send to the batch kernel), and must stay within 10% of
# the best forced engine — the model consultation itself has to be nearly
# free, or "auto" stops being the right default for hot callers.
AUTO_SPEEDUP = 1.5
AUTO_FORCED_MARGIN = 0.9

def family_geomean(times, family):
    values = [t for name, t in times.items() if name.split("/")[0] == family]
    if not values:
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))

static_t = family_geomean(current, "BM_AutoDispatchStatic")
calibrated_t = family_geomean(current, "BM_AutoDispatchCalibrated")
forced_t = family_geomean(current, "BM_AutoDispatchForcedBest")
auto_failed = []
if static_t is None or calibrated_t is None or forced_t is None:
    print("run_bench.sh --check: missing BM_AutoDispatch* results to gate",
          file=sys.stderr)
    auto_failed.append("BM_AutoDispatch*")
else:
    speedup = static_t / calibrated_t
    margin = forced_t / calibrated_t
    flag = "" if speedup >= AUTO_SPEEDUP else "  TOO SLOW"
    if flag:
        auto_failed.append("BM_AutoDispatchCalibrated vs Static")
    print(f"{'auto: calibrated vs static':<36} {speedup:>13.2f}x{flag}")
    flag = "" if margin >= AUTO_FORCED_MARGIN else "  TOO SLOW"
    if flag:
        auto_failed.append("BM_AutoDispatchCalibrated vs ForcedBest")
    print(f"{'auto: forced-best / calibrated':<36} {margin:>13.2f}x{flag}")

if auto_failed:
    print(f"run_bench.sh --check: auto dispatch gate failed: "
          f"{', '.join(auto_failed)}", file=sys.stderr)
    sys.exit(1)
print(f"run_bench.sh --check: calibrated auto >= {AUTO_SPEEDUP}x static, "
      f"within 10% of the best forced engine")
EOF
