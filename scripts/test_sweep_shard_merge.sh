#!/usr/bin/env bash
# test_sweep_shard_merge.sh — end-to-end sharded-sweep checks registered as
# the ctest `sweep_shard_merge_check` test (tools/CMakeLists.txt), run under
# pinned DDM_THREADS values:
#
#   * a 3-way sharded sweep (`--shard=i/3`), merged by `ddm_cli merge`, is
#     byte-identical to the unsharded run — for the deterministic compiled
#     path AND for the seeded Monte-Carlo engine (point identity: global
#     grid indices key the per-point RNG streams);
#   * the shard assignment is recorded in the checkpoint header, a torn
#     shard checkpoint resumes to the same bytes, and rows outside the
#     shard are rejected;
#   * merge validates its inputs: a missing shard, a duplicate shard, an
#     incomplete shard, and a checkpoint from a different sweep are each
#     rejected with exit 2 naming the problem.
#
# Usage: test_sweep_shard_merge.sh /path/to/ddm_cli
set -euo pipefail

CLI="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

expect_reject() {
  local expected_substr="$1"
  shift
  local rc=0 out
  out="$("$@" 2>&1)" && rc=0 || rc=$?
  [ "$rc" -eq 2 ] || fail "'$*' exited $rc, expected 2 (output: $out)"
  case "$out" in
    *"$expected_substr"*) ;;
    *) fail "'$*' output does not mention '$expected_substr': $out" ;;
  esac
}

# Runs the 3-way shard + merge round-trip for one engine and compares the
# merged output byte-for-byte against the unsharded golden run.
round_trip() {
  local tag="$1"
  shift
  "$CLI" sweep 6 2 0 1 12 "$@" >"$TMP/$tag.golden" \
    || fail "[$tag] unsharded sweep failed"
  local i
  for i in 0 1 2; do
    "$CLI" sweep 6 2 0 1 12 "$@" --shard=$i/3 --checkpoint "$TMP/$tag.s$i.ckpt" \
      >"$TMP/$tag.shard$i" || fail "[$tag] shard $i/3 sweep failed"
  done
  "$CLI" merge "$TMP/$tag.s0.ckpt" "$TMP/$tag.s1.ckpt" "$TMP/$tag.s2.ckpt" \
    >"$TMP/$tag.merged" || fail "[$tag] merge failed"
  cmp -s "$TMP/$tag.golden" "$TMP/$tag.merged" \
    || fail "[$tag] merged output is not byte-identical to the unsharded run"
}

# --- byte-identity: auto-selected engine and seeded Monte Carlo ---------
round_trip auto
round_trip mc --engine=mc
# Generalized games shard and merge like the homogeneous one: the scenario
# digest rides in every checkpoint header and output row.
round_trip het --scenario=heterogeneous:1/2,1,2,1,1,2
head -n 1 "$TMP/het.s0.ckpt" | grep -q '"scenario": "heterogeneous:1/2,1,2,1,1,2"' \
  || fail "heterogeneous shard header does not record the scenario"
grep -q '"scenario": "heterogeneous:1/2,1,2,1,1,2"' "$TMP/het.merged" \
  || fail "merged heterogeneous rows do not carry the scenario"

# The shard assignment is recorded in the checkpoint header.
head -n 1 "$TMP/auto.s1.ckpt" | grep -q '"shard": "1/3"' \
  || fail "shard checkpoint header does not record the shard assignment"

# --- crash mid-shard, resume, merge again -------------------------------
# Tear the trailing row off shard 1 (simulated crash mid-write), resume it,
# and merge again: still byte-identical.
lines="$(wc -l <"$TMP/auto.s1.ckpt")"
head -n "$((lines - 1))" "$TMP/auto.s1.ckpt" >"$TMP/torn" && mv "$TMP/torn" "$TMP/auto.s1.ckpt"
printf '{"k": 10, "beta":' >>"$TMP/auto.s1.ckpt"  # torn tail, no newline
"$CLI" sweep 6 2 0 1 12 --shard=1/3 --checkpoint "$TMP/auto.s1.ckpt" >/dev/null \
  || fail "resume of a torn shard checkpoint failed"
"$CLI" merge "$TMP/auto.s0.ckpt" "$TMP/auto.s1.ckpt" "$TMP/auto.s2.ckpt" \
  >"$TMP/auto.remerged" || fail "merge after shard resume failed"
cmp -s "$TMP/auto.golden" "$TMP/auto.remerged" \
  || fail "merge after a shard crash/resume is not byte-identical"

# --- merge input validation ---------------------------------------------
expect_reject "3 shards but 2 checkpoints" \
  "$CLI" merge "$TMP/auto.s0.ckpt" "$TMP/auto.s1.ckpt"
expect_reject "more than once" \
  "$CLI" merge "$TMP/auto.s0.ckpt" "$TMP/auto.s1.ckpt" "$TMP/auto.s1.ckpt"
expect_reject "cannot read" \
  "$CLI" merge "$TMP/auto.s0.ckpt" "$TMP/auto.s1.ckpt" "$TMP/no_such.ckpt"

# A checkpoint from a different sweep (different steps) names the field.
"$CLI" sweep 6 2 0 1 8 --shard=1/3 --checkpoint "$TMP/other.ckpt" >/dev/null \
  || fail "sweep for the different-sweep fixture failed"
expect_reject "belongs to a different sweep" \
  "$CLI" merge "$TMP/auto.s0.ckpt" "$TMP/other.ckpt" "$TMP/auto.s2.ckpt"

# An incomplete shard (row missing, no torn tail) is a named error telling
# the operator which shard to resume.
lines="$(wc -l <"$TMP/auto.s2.ckpt")"
head -n "$((lines - 1))" "$TMP/auto.s2.ckpt" >"$TMP/short" && mv "$TMP/short" "$TMP/auto.s2.ckpt"
expect_reject "missing from shard 2/3" \
  "$CLI" merge "$TMP/auto.s0.ckpt" "$TMP/auto.s1.ckpt" "$TMP/auto.s2.ckpt"

echo "sweep shard merge checks passed"
