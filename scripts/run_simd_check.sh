#!/usr/bin/env bash
# run_simd_check.sh — end-to-end DDM_SIMD dispatch check, registered as the
# opt-in ctest `simd_dispatch_check` (configure with -DDDM_SIMD_CHECK=ON;
# `ctest -L simd` then runs it together with the lane-width parity matrix).
#
# The vectorization contract at the CLI surface (docs/performance.md §4):
#   * every accepted DDM_SIMD value (off, scalar, native, avx2, neon, unset)
#     produces BYTE-IDENTICAL output on both vectorized engines — the packs
#     replicate the scalar op sequence per lane, so width is unobservable in
#     the numbers;
#   * a malformed value is rejected with exit 2 naming the variable;
#   * --metrics reports the width actually dispatched: 1 under off/scalar,
#     and identical to the unset/native width otherwise-or-smaller (clamped
#     to what the binary and CPU support, never widened).
#
# Usage: run_simd_check.sh /path/to/ddm_cli
set -euo pipefail

CLI="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

dispatched_width() {
  # engine.simd_width gauge from the --metrics exposition (stderr).
  env "$@" "$CLI" sweep 12 4 0 1 64 --engine="$ENGINE" --metrics 2>&1 >/dev/null \
    | awk '$1 == "engine.simd_width" { print $2 }'
}

for ENGINE in batch compiled; do
  ref="$("$CLI" sweep 12 4 0 1 64 --engine="$ENGINE")"

  # Byte identity across every accepted mode.
  for mode in off scalar native avx2 neon; do
    out="$(env DDM_SIMD="$mode" "$CLI" sweep 12 4 0 1 64 --engine="$ENGINE")"
    [ "$ref" = "$out" ] || fail "engine=$ENGINE DDM_SIMD=$mode output differs from default"
  done

  # Malformed values: exit 2, stderr names the variable.
  for bad in bogus OFF avx512 2 ""; do
    rc=0
    msg="$(env DDM_SIMD="$bad" "$CLI" sweep 12 4 0 1 64 --engine="$ENGINE" 2>&1)" && rc=0 || rc=$?
    [ "$rc" -eq 2 ] || fail "engine=$ENGINE DDM_SIMD='$bad' exited $rc, expected 2"
    case "$msg" in
      *DDM_SIMD*) ;;
      *) fail "engine=$ENGINE DDM_SIMD='$bad' rejection does not name the variable: $msg" ;;
    esac
  done

  # Honest gauge: off/scalar dispatch width 1; native equals the unset
  # default; avx2/neon never exceed their requested widths.
  native="$(dispatched_width)"
  [ -n "$native" ] || fail "engine=$ENGINE --metrics did not expose engine.simd_width"
  [ "$(dispatched_width DDM_SIMD=off)" = "1" ] || fail "engine=$ENGINE DDM_SIMD=off gauge != 1"
  [ "$(dispatched_width DDM_SIMD=scalar)" = "1" ] || fail "engine=$ENGINE DDM_SIMD=scalar gauge != 1"
  [ "$(dispatched_width DDM_SIMD=native)" = "$native" ] \
    || fail "engine=$ENGINE DDM_SIMD=native gauge != unset gauge"
  [ "$(dispatched_width DDM_SIMD=avx2)" -le 4 ] || fail "engine=$ENGINE DDM_SIMD=avx2 gauge > 4"
  [ "$(dispatched_width DDM_SIMD=neon)" -le 2 ] || fail "engine=$ENGINE DDM_SIMD=neon gauge > 2"
done

echo "simd dispatch checks passed"
