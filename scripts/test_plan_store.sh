#!/usr/bin/env bash
# test_plan_store.sh — end-to-end plan-store checks registered as the ctest
# `plan_store_check` test (tools/CMakeLists.txt):
#
#   * `ddm_cli plans precompile` ships ahead-of-time plans with their
#     rational max-error certificates; list/validate agree they are valid;
#   * a store-backed sweep answers from the store without lowering
#     (engine.store.hits >= 1, compiled.lowerings == 0) and its output is
#     byte-identical to a storeless run;
#   * every corruption class (bit-flipped payload, truncation, stale format
#     version) is rejected at load with a typed message — and the evaluator
#     falls through to lowering, counting the reject, never serving a wrong
#     plan (output still byte-identical);
#   * when a second argument (the ddm_serve binary) is given: a store-backed
#     cold start answers its first compiled query without lowering, verified
#     through the /metrics endpoint.
#
# Usage: test_plan_store.sh /path/to/ddm_cli [/path/to/ddm_serve]
set -euo pipefail

CLI="$1"
SERVE="${2:-}"
TMP="$(mktemp -d)"
PIDS=()

cleanup() {
  local pid
  for pid in "${PIDS[@]:-}"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# Echoes the value of one counter from a --metrics=prom stderr dump.
metric() {
  awk -v name="$2" '$1 == name { print $2 }' "$1"
}

# --- precompile / list / validate ---------------------------------------
"$CLI" plans precompile 6 2 --store="$TMP/store" >"$TMP/pre.txt" 2>"$TMP/pre.err" \
  || fail "plans precompile failed: $(cat "$TMP/pre.err")"
count="$(ls "$TMP/store"/*.plan | wc -l)"
[ "$count" -eq 6 ] || fail "precompile n<=6 stored $count plans, expected 6"
grep -q '"n": 6, "t": "2", "stored": true' "$TMP/pre.txt" \
  || fail "precompile output does not report (n=6, t=2) as stored"

"$CLI" plans list --store="$TMP/store" >"$TMP/list.txt" 2>&1 \
  || fail "plans list failed on a healthy store"
[ "$(grep -c '"valid": true' "$TMP/list.txt")" -eq 6 ] \
  || fail "plans list does not report 6 valid plans"
"$CLI" plans validate --store="$TMP/store" >/dev/null 2>&1 \
  || fail "plans validate failed on a healthy store"

# --- store-backed sweep: no lowering, byte-identical output -------------
"$CLI" sweep 6 2 0 1 8 --engine=compiled >"$TMP/cold.txt" \
  || fail "storeless sweep failed"
DDM_PLAN_STORE="$TMP/store" "$CLI" sweep 6 2 0 1 8 --engine=compiled \
  --metrics=prom >"$TMP/warm.txt" 2>"$TMP/warm.prom" \
  || fail "store-backed sweep failed"
cmp -s "$TMP/cold.txt" "$TMP/warm.txt" \
  || fail "store-backed sweep output differs from the storeless run"
hits="$(metric "$TMP/warm.prom" engine_store_hits)"
lowerings="$(metric "$TMP/warm.prom" compiled_lowerings)"
[ "${hits:-0}" -ge 1 ] || fail "store-backed sweep reports engine_store_hits=$hits, expected >= 1"
[ "${lowerings:-1}" -eq 0 ] || fail "store-backed sweep lowered anyway (compiled_lowerings=$lowerings)"

# --- corruption: typed rejection, fall through to lowering --------------
# Flip one coefficient byte near the end of the payload: overwrite it with a
# value guaranteed to differ (0xAA, or 0x55 if it already was 0xAA).
size="$(stat -c %s "$TMP/store/n6_t2.plan")"
orig="$(dd if="$TMP/store/n6_t2.plan" bs=1 count=1 skip=$((size - 5)) 2>/dev/null | od -An -tu1 | tr -d ' ')"
byte='\252'
[ "$orig" = "170" ] && byte='\125'
printf "$byte" | dd of="$TMP/store/n6_t2.plan" bs=1 count=1 seek=$((size - 5)) conv=notrunc 2>/dev/null

rc=0
"$CLI" plans validate --store="$TMP/store" >"$TMP/val.txt" 2>&1 || rc=$?
[ "$rc" -eq 3 ] || fail "plans validate exited $rc on a corrupt store, expected 3"
grep -q "payload checksum mismatch" "$TMP/val.txt" \
  || fail "corrupt plan not rejected with a checksum message: $(cat "$TMP/val.txt")"

DDM_PLAN_STORE="$TMP/store" "$CLI" sweep 6 2 0 1 8 --engine=compiled \
  --metrics=prom >"$TMP/corrupt.txt" 2>"$TMP/corrupt.prom" \
  || fail "sweep against a corrupt store must fall through to lowering, not fail"
cmp -s "$TMP/cold.txt" "$TMP/corrupt.txt" \
  || fail "sweep served a wrong plan from a corrupt store (output differs)"
rejects="$(metric "$TMP/corrupt.prom" engine_store_rejects)"
relowered="$(metric "$TMP/corrupt.prom" compiled_lowerings)"
[ "${rejects:-0}" -ge 1 ] || fail "corrupt store hit not counted (engine_store_rejects=$rejects)"
[ "${relowered:-0}" -ge 1 ] || fail "corrupt store did not fall through to lowering"

# Truncation: cut the payload short.
head -c 100 "$TMP/store/n4_t2.plan" >"$TMP/t.plan" && mv "$TMP/t.plan" "$TMP/store/n4_t2.plan"
rc=0
"$CLI" plans validate --store="$TMP/store" >"$TMP/val2.txt" 2>&1 || rc=$?
[ "$rc" -eq 3 ] || fail "plans validate exited $rc on a truncated plan, expected 3"
grep -q "truncated" "$TMP/val2.txt" \
  || fail "truncated plan not named as truncated: $(cat "$TMP/val2.txt")"

# Stale format version (header version bumped; must be reported as stale,
# distinguishable from corruption, before any checksum verdict).
printf '\052' | dd of="$TMP/store/n5_t2.plan" bs=1 count=1 seek=8 conv=notrunc 2>/dev/null
"$CLI" plans list --store="$TMP/store" >"$TMP/list2.txt" 2>&1 || true
grep -q '"stale": true' "$TMP/list2.txt" \
  || fail "stale-version plan not flagged stale: $(cat "$TMP/list2.txt")"
grep -q "stale format version" "$TMP/list2.txt" \
  || fail "stale-version message missing: $(cat "$TMP/list2.txt")"

# --- ddm_serve warm start (optional) ------------------------------------
if [ -n "$SERVE" ]; then
  rm -rf "$TMP/store"
  "$CLI" plans precompile 6 2 --store="$TMP/store" >/dev/null 2>&1 \
    || fail "re-precompile for the serve check failed"
  env DDM_SERVE_PORT=0 DDM_SERVE_WORKERS=1 "$SERVE" --plan-store="$TMP/store" \
    >"$TMP/serve.out" 2>"$TMP/serve.err" &
  SERVER_PID=$!
  PIDS+=("$SERVER_PID")
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$TMP/serve.out")"
    [ -n "$PORT" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null \
      || fail "ddm_serve died at startup: $(cat "$TMP/serve.err")"
    sleep 0.1
  done
  [ -n "$PORT" ] || fail "ddm_serve never printed its listening line"
  grep -q "plan store '$TMP/store' (warm start)" "$TMP/serve.err" \
    || fail "ddm_serve did not announce the warm start: $(cat "$TMP/serve.err")"

  exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "connect to port $PORT failed"
  printf '{"op":"threshold","n":6,"t":"2","beta":0.5,"engine":"compiled"}\n' >&3
  reply=""
  read -r -t 10 reply <&3 || fail "first store-backed query hung"
  exec 3>&- 3<&-
  case "$reply" in
    *'"ok":true'*) ;;
    *) fail "first store-backed query failed: $reply" ;;
  esac

  exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "metrics connect failed"
  printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
  cat <&3 >"$TMP/serve_metrics.txt"
  exec 3>&- 3<&-
  serve_hits="$(metric "$TMP/serve_metrics.txt" engine_store_hits)"
  serve_lowerings="$(metric "$TMP/serve_metrics.txt" compiled_lowerings)"
  [ "${serve_hits:-0}" -ge 1 ] \
    || fail "warm-started ddm_serve reports engine_store_hits=$serve_hits, expected >= 1"
  [ "${serve_lowerings:-1}" -eq 0 ] \
    || fail "warm-started ddm_serve lowered its first query (compiled_lowerings=$serve_lowerings)"

  kill "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
fi

echo "plan store checks passed"
