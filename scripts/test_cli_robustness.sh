#!/usr/bin/env bash
# test_cli_robustness.sh — end-to-end CLI checks registered as the ctest
# `cli_robustness` test (tools/CMakeLists.txt): checked argument parsing
# (malformed arguments are rejected with exit 2 and a message naming the
# offending value), certified mode, and the sweep checkpoint/resume
# round-trip including a simulated crash (torn trailing line) and a
# header-mismatch rejection.
#
# When a second argument (the ddm_serve binary) is given, the DDM_SERVE_*
# configuration knobs are checked too: every malformed value must exit 2
# naming the variable, flags must override the environment, and
# --check-config must validate without binding a port.
#
# Usage: test_cli_robustness.sh /path/to/ddm_cli [/path/to/ddm_serve]
set -euo pipefail

CLI="$1"
SERVE="${2:-}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# Runs the CLI expecting failure; checks the exit code and that stderr names
# the offending argument.
expect_reject() {
  local expected_substr="$1"
  shift
  local rc=0 out
  out="$("$@" 2>&1)" && rc=0 || rc=$?
  [ "$rc" -eq 2 ] || fail "'$*' exited $rc, expected 2 (output: $out)"
  case "$out" in
    *"$expected_substr"*) ;;
    *) fail "'$*' output does not mention '$expected_substr': $out" ;;
  esac
}

# --- checked argument parsing -------------------------------------------
expect_reject "1.2.3" "$CLI" threshold 1.2.3 1 0.5      # malformed n
expect_reject "1.2.3" "$CLI" threshold 3 1.2.3 0.5      # malformed rational t
expect_reject "-3"    "$CLI" threshold -3 1 0.5         # negative count
expect_reject "1.2/3" "$CLI" threshold 3 1 1.2/3        # dot inside a fraction
expect_reject "--bogus" "$CLI" threshold 3 1 0.5 --bogus  # unknown option
expect_reject "--certify" "$CLI" oblivious 3 1 --certify  # option/command mismatch
expect_reject "--resume" "$CLI" threshold 3 1 0.5 --resume "$TMP/x"

# Degenerate sweep shapes used to fall through to the usage text (exit 1,
# argument unnamed); they must be rejected like any other malformed argument.
expect_reject "invalid n '0'" "$CLI" sweep 0 1 0 1 4
expect_reject "invalid steps '0'" "$CLI" sweep 3 1 0 1 0
expect_reject "invalid digits" "$CLI" analyze 3 1 0
expect_reject "invalid m" "$CLI" volume 0
expect_reject "volume argument count" "$CLI" volume 2 1/2
# --certify cannot combine with checkpointing (certified rows carry extra
# columns the checkpoint format does not persist).
expect_reject "--certify" "$CLI" sweep 3 1 0 1 4 --certify --checkpoint "$TMP/c.ckpt"

# Engine selection: the value set is closed (registry ids + auto), the flag
# is accepted by the evaluating subcommands only, and it cannot combine with
# --certify (the ladder picks its own evaluation tiers).
expect_reject "invalid --engine 'bogus'" "$CLI" sweep 3 1 0 1 4 --engine=bogus
expect_reject "invalid --engine 'bogus'" "$CLI" analyze 3 1 --engine=bogus
expect_reject "--engine requires a value" "$CLI" sweep 3 1 0 1 4 --engine
expect_reject "--engine is only supported by" "$CLI" oblivious 3 1 --engine=kernel
expect_reject "--engine is only supported by" "$CLI" ladder 3 1 --engine=kernel
expect_reject "--engine cannot be combined with --certify" "$CLI" sweep 3 1 0 1 4 --certify --engine=compiled
expect_reject "--engine=certified cannot be combined" "$CLI" sweep 3 1 0 1 4 --engine=certified --checkpoint "$TMP/ce.ckpt"
# A forced engine that cannot serve the request is a named error, not a
# silent substitution: the double kernels cap n at 20.
expect_reject "does not support" "$CLI" threshold 24 8 3/8 --engine=kernel

# Malformed observability options are named, and a bogus DDM_THREADS must be
# rejected up front instead of being silently clamped to one lane.
expect_reject "--trace" "$CLI" threshold 3 1 0.5 --trace
expect_reject "invalid --metrics format 'bogus'" "$CLI" threshold 3 1 0.5 --metrics=bogus
expect_reject "DDM_THREADS" env DDM_THREADS=abc "$CLI" sweep 3 1 0 1 4
expect_reject "DDM_THREADS" env DDM_THREADS=0 "$CLI" sweep 3 1 0 1 4
expect_reject "DDM_THREADS" env DDM_THREADS=1e9 "$CLI" sweep 3 1 0 1 4

# DDM_SIMD (util/simd.hpp): the value set is closed and case-sensitive —
# anything else is rejected up front with the variable named — and every
# accepted mode is pure dispatch policy: `off` forces the scalar kernels and
# the output stays byte-identical to the default (native) dispatch.
expect_reject "DDM_SIMD" env DDM_SIMD=bogus "$CLI" sweep 3 1 0 1 4
expect_reject "DDM_SIMD" env DDM_SIMD=OFF "$CLI" sweep 3 1 0 1 4
expect_reject "DDM_SIMD" env DDM_SIMD= "$CLI" sweep 3 1 0 1 4
expect_reject "DDM_SIMD" env DDM_SIMD=avx512 "$CLI" sweep 12 4 0.3 0.4 2 --engine=compiled
simd_ref="$("$CLI" sweep 12 4 0 1 32 --engine=batch)"
for mode in off scalar native avx2 neon; do
  simd_out="$(env DDM_SIMD="$mode" "$CLI" sweep 12 4 0 1 32 --engine=batch)" \
    || fail "DDM_SIMD=$mode sweep failed"
  [ "$simd_ref" = "$simd_out" ] || fail "DDM_SIMD=$mode output differs from default dispatch"
done

# --- policy tables (profile-guided dispatch) ------------------------------
# Strict resolution, same contract as DDM_SIMD: a set-but-unusable
# DDM_POLICY / --policy exits 2 naming the knob that held the bad path —
# a misconfigured policy must never silently dispatch cold. A valid table
# must load on any subcommand without changing a single output byte.
expect_reject "--policy"   "$CLI" sweep 3 1 0 1 4 --policy
expect_reject "--policy"   "$CLI" sweep 3 1 0 1 4 --policy=
expect_reject "--policy"   "$CLI" sweep 3 1 0 1 4 --policy="$TMP/no_such_table"
expect_reject "DDM_POLICY" env DDM_POLICY="$TMP/no_such_table" "$CLI" sweep 3 1 0 1 4
expect_reject "DDM_POLICY" env DDM_POLICY="$TMP/no_such_table" "$CLI" threshold 3 1 0.5
printf 'garbage\n' >"$TMP/garbage.ddmpolicy"
expect_reject "DDM_POLICY" env DDM_POLICY="$TMP/garbage.ddmpolicy" "$CLI" sweep 3 1 0 1 4
expect_reject "--policy"   "$CLI" analyze 3 1 4 --policy="$TMP/garbage.ddmpolicy"

# A hand-built valid table (FNV-1a checksum trailer, the cost_model.hpp
# format) — independent of `calibrate`, which needs an optimised build.
python3 - "$TMP/valid.ddmpolicy" <<'EOF'
import sys
body = ("ddmpolicy v1\norigin calibrate\nt_regime n/3\n"
        "cell batch 4 16 1e-06\ncell compiled 4 16 2e-09\n")
h = 14695981039346656037
for b in body.encode():
    h = ((h ^ b) * 1099511628211) % (1 << 64)
with open(sys.argv[1], "w") as f:
    f.write(body + f"checksum {h:016x}\n")
EOF
policy_ref="$("$CLI" sweep 6 2 0 1 16)"
policy_out="$("$CLI" sweep 6 2 0 1 16 --policy="$TMP/valid.ddmpolicy")" \
  || fail "--policy rejected a valid table"
[ "$policy_ref" = "$policy_out" ] || fail "--policy changed sweep output bytes"
policy_out="$(env DDM_POLICY="$TMP/valid.ddmpolicy" "$CLI" sweep 6 2 0 1 16)" \
  || fail "DDM_POLICY rejected a valid table"
[ "$policy_ref" = "$policy_out" ] || fail "DDM_POLICY changed sweep output bytes"
# Truncation is detected (checksum trailer gate), and a bumped format
# version is rejected even when its checksum is valid.
head -c 30 "$TMP/valid.ddmpolicy" >"$TMP/trunc.ddmpolicy"
expect_reject "--policy" "$CLI" sweep 3 1 0 1 4 --policy="$TMP/trunc.ddmpolicy"
python3 - "$TMP/future.ddmpolicy" <<'EOF'
import sys
body = "ddmpolicy v99\ncell batch 4 16 1e-06\n"
h = 14695981039346656037
for b in body.encode():
    h = ((h ^ b) * 1099511628211) % (1 << 64)
with open(sys.argv[1], "w") as f:
    f.write(body + f"checksum {h:016x}\n")
EOF
expect_reject "format version" "$CLI" sweep 3 1 0 1 4 --policy="$TMP/future.ddmpolicy"

# --- ddm_serve configuration ---------------------------------------------
# Same strict-parse contract as DDM_THREADS/DDM_SIMD: a malformed knob exits
# 2 and the error names the variable (or flag) that held the bad text.
if [ -n "$SERVE" ]; then
  "$SERVE" --check-config >/dev/null || fail "ddm_serve --check-config failed on defaults"
  expect_reject "DDM_SERVE_PORT"        env DDM_SERVE_PORT=abc       "$SERVE" --check-config
  expect_reject "DDM_SERVE_PORT"        env DDM_SERVE_PORT=70000     "$SERVE" --check-config
  expect_reject "DDM_SERVE_BACKLOG"     env DDM_SERVE_BACKLOG=0      "$SERVE" --check-config
  expect_reject "DDM_SERVE_QUEUE"       env DDM_SERVE_QUEUE=12q      "$SERVE" --check-config
  expect_reject "DDM_SERVE_QUEUE"       env DDM_SERVE_QUEUE=         "$SERVE" --check-config
  expect_reject "DDM_SERVE_DEADLINE_MS" env DDM_SERVE_DEADLINE_MS=-5 "$SERVE" --check-config
  expect_reject "DDM_SERVE_WORKERS"     env DDM_SERVE_WORKERS=1e3    "$SERVE" --check-config
  expect_reject "--queue"               "$SERVE" --check-config --queue=bogus
  expect_reject "--workers"             "$SERVE" --check-config --workers=0
  expect_reject "unknown argument"      "$SERVE" --check-config --bogus=1
  # Zero/edge audit: PORT=0 (ephemeral) and DEADLINE_MS=0 (no deadline) are
  # meaningful sentinels and must be ACCEPTED; a zero-capacity queue, empty
  # worker pool, or zero backlog can only wedge the daemon and must be
  # rejected naming the knob — consistently between environment and flag.
  env DDM_SERVE_PORT=0 "$SERVE" --check-config >/dev/null \
    || fail "DDM_SERVE_PORT=0 (ephemeral port) was rejected"
  env DDM_SERVE_DEADLINE_MS=0 "$SERVE" --check-config >/dev/null \
    || fail "DDM_SERVE_DEADLINE_MS=0 (no deadline) was rejected"
  expect_reject "DDM_SERVE_QUEUE"   env DDM_SERVE_QUEUE=0   "$SERVE" --check-config
  expect_reject "DDM_SERVE_WORKERS" env DDM_SERVE_WORKERS=0 "$SERVE" --check-config
  expect_reject "--queue"           "$SERVE" --check-config --queue=0
  expect_reject "--backlog"         "$SERVE" --check-config --backlog=0
  expect_reject "DDM_SERVE_QUEUE"   env DDM_SERVE_QUEUE=65537 "$SERVE" --check-config
  expect_reject "DDM_SERVE_WORKERS" env DDM_SERVE_WORKERS=257 "$SERVE" --check-config
  # Flags override the environment; valid values are echoed back, the
  # resolved port and plan store included.
  cfg="$(env DDM_SERVE_QUEUE=8 "$SERVE" --check-config --queue=32 --workers=3)" \
    || fail "ddm_serve --check-config rejected valid knobs"
  case "$cfg" in
    *"port=0"*"queue=32"*"workers=3"*"plan_store=<none>"*) ;;
    *) fail "--check-config did not reflect flag overrides: $cfg" ;;
  esac
  # A plan store pointing nowhere is a configuration error, not a cold start.
  expect_reject "--plan-store"    "$SERVE" --check-config --plan-store="$TMP/no_such_store"
  expect_reject "DDM_PLAN_STORE"  env DDM_PLAN_STORE="$TMP/no_such_store" "$SERVE" --check-config
  mkdir -p "$TMP/empty_store"
  cfg="$("$SERVE" --check-config --plan-store="$TMP/empty_store")" \
    || fail "ddm_serve --check-config rejected a valid plan store"
  case "$cfg" in
    *"plan_store=$TMP/empty_store"*) ;;
    *) fail "--check-config did not report the plan store: $cfg" ;;
  esac
  # Policy tables are resolved eagerly at configuration time — a daemon must
  # refuse to start (not dispatch cold) on a bad table, via either knob.
  expect_reject "--policy-table" "$SERVE" --check-config --policy-table=
  expect_reject "--policy-table" "$SERVE" --check-config --policy-table="$TMP/no_such_table"
  expect_reject "--policy-table" "$SERVE" --check-config --policy-table="$TMP/garbage.ddmpolicy"
  expect_reject "DDM_POLICY" env DDM_POLICY="$TMP/no_such_table" "$SERVE" --check-config
  cfg="$("$SERVE" --check-config --policy-table="$TMP/valid.ddmpolicy")" \
    || fail "ddm_serve --check-config rejected a valid policy table"
  case "$cfg" in
    *"policy_table=$TMP/valid.ddmpolicy"*) ;;
    *) fail "--check-config did not report the policy table: $cfg" ;;
  esac
  cfg="$("$SERVE" --check-config)" || fail "ddm_serve --check-config failed on defaults"
  case "$cfg" in
    *"policy_table=<none>"*) ;;
    *) fail "--check-config did not report policy_table=<none>: $cfg" ;;
  esac
fi

# --- certified mode ------------------------------------------------------
cert="$("$CLI" threshold 24 8 3/8 --certify)"
case "$cert" in
  *"tier = interval"*) ;;
  *) fail "certified n=24 run did not escalate to the interval tier: $cert" ;;
esac
case "$cert" in
  *" met"*) ;;
  *) fail "certified n=24 run did not meet tolerance: $cert" ;;
esac

# An unmeetable tolerance must still produce an enclosure but exit 3.
rc=0
"$CLI" volume 2 1 1 3/4 3/4 --certify=0 >/dev/null 2>&1 || rc=$?
# tolerance 0 is satisfiable by the exact tier, so this one must succeed...
[ "$rc" -eq 0 ] || fail "--certify=0 on an exact-capable instance exited $rc"

# --- checkpoint / resume round-trip --------------------------------------
ck="$TMP/sweep.ckpt"
ref="$("$CLI" sweep 3 1 0 1 12)"
full="$("$CLI" sweep 3 1 0 1 12 --checkpoint "$ck")"
[ "$ref" = "$full" ] || fail "checkpointed sweep output differs from plain sweep"

# Simulate a crash: keep the header + 5 rows, leave a torn partial line.
head -n 6 "$ck" > "$ck.tmp"
printf '{"k": 5, "beta":' >> "$ck.tmp"
mv "$ck.tmp" "$ck"
resumed="$("$CLI" sweep 3 1 0 1 12 --resume "$ck")"
[ "$ref" = "$resumed" ] || fail "resumed sweep output is not byte-identical"

# Resuming an already-complete checkpoint recomputes nothing and still
# reproduces the output.
again="$("$CLI" sweep 3 1 0 1 12 --resume "$ck")"
[ "$ref" = "$again" ] || fail "second resume output is not byte-identical"

# A header mismatch (different n) must be rejected NAMING the field, so the
# operator learns which knob differs — not just that "something" does.
expect_reject "field 'n': checkpoint 3 vs requested 4" "$CLI" sweep 4 1 0 1 12 --resume "$ck"
# Engine identity is part of the header: rows computed by one engine must
# never be glued onto a resume running another.
ceng="$TMP/engine.ckpt"
"$CLI" sweep 3 1 0 1 4 --engine=exact --checkpoint "$ceng" >/dev/null
expect_reject "field 'engine': checkpoint exact vs requested mc" \
  "$CLI" sweep 3 1 0 1 4 --engine=mc --resume "$ceng"

# --- sharding flags -------------------------------------------------------
expect_reject "invalid --shard 'x/3'" "$CLI" sweep 3 1 0 1 4 --shard=x/3
expect_reject "invalid --shard '3'"   "$CLI" sweep 3 1 0 1 4 --shard=3
expect_reject "invalid --shard '3/3'" "$CLI" sweep 3 1 0 1 4 --shard=3/3
expect_reject "invalid --shard '0/0'" "$CLI" sweep 3 1 0 1 4 --shard=0/0
expect_reject "--shard requires a value" "$CLI" sweep 3 1 0 1 4 --shard
expect_reject "--shard is only supported by 'sweep'" "$CLI" threshold 3 1 0.5 --shard=0/2
expect_reject "--certify cannot be combined with --shard" "$CLI" sweep 3 1 0 1 4 --certify --shard=0/2
# Resuming a sharded checkpoint without (or with the wrong) --shard is a
# named mismatch, not silently partial output.
cs="$TMP/shard0.ckpt"
"$CLI" sweep 3 1 0 1 12 --shard=0/2 --checkpoint "$cs" >/dev/null
expect_reject "field 'shard': checkpoint 0/2 vs requested 0/1" "$CLI" sweep 3 1 0 1 12 --resume "$cs"
expect_reject "field 'shard': checkpoint 0/2 vs requested 1/2" \
  "$CLI" sweep 3 1 0 1 12 --shard=1/2 --resume "$cs"

# --- plans / merge argument checking -------------------------------------
expect_reject "--store is only supported by 'plans'" "$CLI" sweep 3 1 0 1 4 --store="$TMP"
expect_reject "--store requires a directory" "$CLI" plans list --store
expect_reject "unknown plans verb 'bogus'" "$CLI" plans bogus
expect_reject "plans needs a store directory" "$CLI" plans list
expect_reject "--store" "$CLI" plans list --store="$TMP/no_such_store"
expect_reject "invalid n_max '0'" "$CLI" plans precompile 0 1 --store="$TMP/ps"
expect_reject "cannot read" "$CLI" merge "$TMP/no_such.ckpt"

# --- engine selection ----------------------------------------------------
# Auto must pick the compiled plan on a small symmetric sweep (the certified
# bound is far below the auto tolerance): every row reports the chosen
# engine, and stripping that field leaves output byte-identical to forcing
# --engine=compiled; forcing the kernel must also succeed.
auto_out="$("$CLI" sweep 6 2 0 1 24)"
case "$auto_out" in
  *'"engine": "compiled"'*) ;;
  *) fail "auto sweep rows do not report the compiled engine: $auto_out" ;;
esac
auto_stripped="$(printf '%s\n' "$auto_out" | sed 's/, "engine": "compiled"//')"
compiled_out="$("$CLI" sweep 6 2 0 1 24 --engine=compiled)"
[ "$auto_stripped" = "$compiled_out" ] || fail "auto engine output (engine field stripped) differs from --engine=compiled at n=6"
"$CLI" sweep 6 2 0 1 24 --engine=kernel >/dev/null || fail "--engine=kernel sweep failed"

# Every registered engine serves the same small sweep.
for eng in batch certified compiled exact kernel mc; do
  "$CLI" sweep 3 1 0 1 4 --engine="$eng" >/dev/null || fail "--engine=$eng sweep failed"
done

# Auto past the lowering cap (n > 16) must use the batch kernel and say so
# in the rows; no fallback note (the cap is policy, not a failed promise).
big_auto="$("$CLI" sweep 18 6 0.3 0.4 2 2>"$TMP/big_auto.err")"
case "$big_auto" in
  *'"engine": "batch"'*) ;;
  *) fail "auto sweep at n=18 did not report the batch engine: $big_auto" ;;
esac
[ ! -s "$TMP/big_auto.err" ] || fail "auto sweep at n=18 emitted an unexpected note: $(cat "$TMP/big_auto.err")"

# Satellite regression: when auto *declines* the compiled plan the fallback
# must be visible — a stderr note plus the winning engine in every row.
# A deterministic lowering failure is injected through the plan-cache fault
# hook (throw@0 strikes the lowering, is spent there, and the sweep then
# completes on the batch kernel).
fallback_out="$(DDM_FAULT_PLAN=throw@0 "$CLI" sweep 6 2 0 1 4 2>"$TMP/fallback.err")"
case "$fallback_out" in
  *'"engine": "batch"'*) ;;
  *) fail "auto fallback sweep rows do not report the batch engine: $fallback_out" ;;
esac
grep -q "note: --engine=auto:" "$TMP/fallback.err" || fail "auto fallback did not leave a stderr note: $(cat "$TMP/fallback.err")"
grep -q "compiled lowering failed" "$TMP/fallback.err" || fail "fallback note does not name the cause: $(cat "$TMP/fallback.err")"
# Values must match the kernel path exactly (the fallback changes the
# reporting, never the numbers).
fallback_stripped="$(printf '%s\n' "$fallback_out" | sed 's/, "engine": "batch"//')"
kernel_out="$("$CLI" sweep 6 2 0 1 4 --engine=kernel)"
[ "$fallback_stripped" = "$kernel_out" ] || fail "fallback sweep values differ from --engine=kernel"
# Forcing --engine=compiled under the same fault must surface the error
# (exit 2), not fall back.
expect_reject "injected" env DDM_FAULT_PLAN=throw@0 "$CLI" sweep 6 2 0 1 4 --engine=compiled

# The certificate-miss branch of the same regression: at n=16, t=6 the
# lowering succeeds but its certified bound (~7e-2) blows the 1e-9 auto
# tolerance — the pre-engine CLI fell back to the kernel *silently* here.
miss_out="$("$CLI" sweep 16 6 0.3 0.45 2 2>"$TMP/miss.err")"
case "$miss_out" in
  *'"engine": "batch"'*) ;;
  *) fail "certificate-miss sweep rows do not report the batch engine: $miss_out" ;;
esac
grep -q "compiled plan certificate .* exceeds tolerance" "$TMP/miss.err" \
  || fail "certificate-miss fallback left no stderr note: $(cat "$TMP/miss.err")"

# --- scenario descriptors (engine/scenario.hpp) --------------------------
# The value set is closed, the flag grammar is strict, and every malformed
# shape is rejected naming the offending text — a generalized game must
# never silently evaluate as the homogeneous one (ctest label: scenario).
expect_reject "invalid --scenario 'bogus'" "$CLI" threshold 3 1 0.5 --scenario=bogus
expect_reject "unknown scenario" "$CLI" sweep 3 1 0 1 4 --scenario=exotic:1,2
expect_reject "--scenario requires a value" "$CLI" threshold 3 1 0.5 --scenario
expect_reject "--ranges requires a value" "$CLI" threshold 3 1 0.5 --ranges
# --ranges without (or with the wrong) scenario id is a named error.
expect_reject "--ranges requires --scenario=heterogeneous" "$CLI" threshold 3 1 0.5 --ranges=1,1,1
expect_reject "--ranges only applies to --scenario=heterogeneous" \
  "$CLI" threshold 3 1 0.5 --scenario=deviating:1 --ranges=1,1,1
expect_reject "carries its own ranges" \
  "$CLI" threshold 3 1 0.5 --scenario=heterogeneous:1,1,1 --ranges=1,1,1
expect_reject "requires per-player ranges" "$CLI" threshold 3 1 0.5 --scenario=heterogeneous
# Malformed range lists: empty entries, non-rational text, non-positive
# ranges, and a length that disagrees with the player count.
expect_reject "invalid --ranges" "$CLI" threshold 3 1 0.5 --scenario=heterogeneous --ranges=1,,2
expect_reject "invalid --ranges" "$CLI" threshold 3 1 0.5 --scenario=heterogeneous --ranges=1,x,2
expect_reject "must be > 0" "$CLI" threshold 3 1 0.5 --scenario=heterogeneous --ranges=1,0,2
expect_reject "must be > 0" "$CLI" sweep 3 1 0 1 4 --scenario=heterogeneous:1,-1,2
expect_reject "2 ranges but the request has 3 players" \
  "$CLI" threshold 3 1 0.5 --scenario=heterogeneous --ranges=1,2
expect_reject "4 ranges but the request has 3 players" \
  "$CLI" sweep 3 1 0 1 4 --scenario=heterogeneous:1,2,1,2
# Deviation counts: k = 0 and k >= n are both nonsensical.
expect_reject "deviating" "$CLI" threshold 3 1 0.5 --scenario=deviating:0
expect_reject "3 deviating players need n > 3" "$CLI" threshold 3 1 0.5 --scenario=deviating:3
# The flag set is closed per command, like --engine/--shard.
expect_reject "--scenario/--ranges are only supported by" "$CLI" oblivious 3 1 --scenario=deviating:1
expect_reject "--scenario/--ranges are only supported by" "$CLI" ladder 3 1 --ranges=1,1,1
expect_reject "--scenario/--ranges are only supported by" "$CLI" deviate 6 2 0.62 2 --scenario=deviating:2

# The deviate subcommand's own argument checking.
expect_reject "use \`ddm_cli threshold\`" "$CLI" deviate 6 2 0.62 0
expect_reject "k '6'" "$CLI" deviate 6 2 0.62 6
expect_reject "invalid n '0'" "$CLI" deviate 0 2 0.62 2
expect_reject "beta" "$CLI" deviate 6 2 1.5 2
expect_reject "trials" "$CLI" deviate 6 2 0.62 2 0

# The scenario is part of the checkpoint header: rows computed for one game
# must never resume (or merge) into another.
chet="$TMP/het.ckpt"
"$CLI" sweep 3 1 0 1 4 --scenario=heterogeneous:1/2,1,2 --checkpoint "$chet" >/dev/null \
  || fail "heterogeneous checkpointed sweep failed"
head -n 1 "$chet" | grep -q '"scenario": "heterogeneous:1/2,1,2"' \
  || fail "checkpoint header does not record the scenario"
expect_reject "field 'scenario': checkpoint heterogeneous:1/2,1,2 vs requested homogeneous" \
  "$CLI" sweep 3 1 0 1 4 --resume "$chet"
expect_reject "field 'scenario': checkpoint heterogeneous:1/2,1,2 vs requested heterogeneous:1/2,1,1" \
  "$CLI" sweep 3 1 0 1 4 --scenario=heterogeneous:1/2,1,1 --resume "$chet"
# The heterogeneous checkpoint/resume round-trip holds byte for byte.
het_ref="$("$CLI" sweep 3 1 0 1 12 --scenario=heterogeneous:1/2,1,2)"
chet2="$TMP/het2.ckpt"
"$CLI" sweep 3 1 0 1 12 --scenario=heterogeneous:1/2,1,2 --checkpoint "$chet2" >/dev/null
head -n 6 "$chet2" > "$chet2.tmp"
printf '{"k": 5, "beta":' >> "$chet2.tmp"
mv "$chet2.tmp" "$chet2"
het_resumed="$("$CLI" sweep 3 1 0 1 12 --scenario=heterogeneous:1/2,1,2 --resume "$chet2")" \
  || fail "heterogeneous resume failed"
[ "$het_ref" = "$het_resumed" ] || fail "heterogeneous resumed sweep is not byte-identical"

# A forced engine that cannot serve the game is a named error, not a silent
# substitution — the plan-based engines serve the homogeneous game only.
expect_reject "does not support" "$CLI" threshold 3 1 0.5 --scenario=deviating:1 --engine=compiled
expect_reject "does not support" "$CLI" sweep 3 1 0 1 4 --scenario=heterogeneous:1,1,1 --engine=batch

# --- per-subcommand help -------------------------------------------------
for cmd in oblivious threshold analyze simulate volume ladder sweep plans merge deviate; do
  "$CLI" help "$cmd" | grep -q "usage: ddm_cli $cmd" || fail "'help $cmd' missing synopsis"
  "$CLI" "$cmd" --help | grep -q "usage: ddm_cli $cmd" || fail "'$cmd --help' missing synopsis"
done
"$CLI" help sweep | grep -q -- "--engine" || fail "'help sweep' does not document --engine"
"$CLI" help sweep | grep -q -- "--shard" || fail "'help sweep' does not document --shard"
"$CLI" help plans | grep -q -- "--store" || fail "'help plans' does not document --store"
expect_reject "unknown command 'bogus'" "$CLI" help bogus

# --engine on the scalar subcommands: the answering engine is named.
"$CLI" threshold 3 1 0.622 --engine=exact | grep -q "\[engine: exact, deterministic\]" \
  || fail "threshold --engine=exact does not name the engine"
"$CLI" analyze 3 1 --engine=batch | grep -q "Engine cross-check \[batch\]" \
  || fail "analyze --engine=batch does not print the cross-check"
"$CLI" simulate 3 1 0.622 20000 7 --engine=compiled | grep -q "\[engine: compiled\]" \
  || fail "simulate --engine=compiled does not name the engine"

# The checkpoint/resume round-trip holds on the compiled path too.
ckc="$TMP/sweep_compiled.ckpt"
refc="$("$CLI" sweep 3 1 0 1 12 --engine=compiled)"
fullc="$("$CLI" sweep 3 1 0 1 12 --engine=compiled --checkpoint "$ckc")"
[ "$refc" = "$fullc" ] || fail "compiled checkpointed sweep output differs from plain compiled sweep"
head -n 6 "$ckc" > "$ckc.tmp"
mv "$ckc.tmp" "$ckc"
resumedc="$("$CLI" sweep 3 1 0 1 12 --engine=compiled --resume "$ckc")"
[ "$refc" = "$resumedc" ] || fail "compiled resumed sweep output is not byte-identical"

echo "cli robustness checks passed"
