#!/usr/bin/env bash
# test_cli_robustness.sh — end-to-end CLI checks registered as the ctest
# `cli_robustness` test (tools/CMakeLists.txt): checked argument parsing
# (malformed arguments are rejected with exit 2 and a message naming the
# offending value), certified mode, and the sweep checkpoint/resume
# round-trip including a simulated crash (torn trailing line) and a
# header-mismatch rejection.
#
# Usage: test_cli_robustness.sh /path/to/ddm_cli
set -euo pipefail

CLI="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# Runs the CLI expecting failure; checks the exit code and that stderr names
# the offending argument.
expect_reject() {
  local expected_substr="$1"
  shift
  local rc=0 out
  out="$("$@" 2>&1)" && rc=0 || rc=$?
  [ "$rc" -eq 2 ] || fail "'$*' exited $rc, expected 2 (output: $out)"
  case "$out" in
    *"$expected_substr"*) ;;
    *) fail "'$*' output does not mention '$expected_substr': $out" ;;
  esac
}

# --- checked argument parsing -------------------------------------------
expect_reject "1.2.3" "$CLI" threshold 1.2.3 1 0.5      # malformed n
expect_reject "1.2.3" "$CLI" threshold 3 1.2.3 0.5      # malformed rational t
expect_reject "-3"    "$CLI" threshold -3 1 0.5         # negative count
expect_reject "1.2/3" "$CLI" threshold 3 1 1.2/3        # dot inside a fraction
expect_reject "--bogus" "$CLI" threshold 3 1 0.5 --bogus  # unknown option
expect_reject "--certify" "$CLI" oblivious 3 1 --certify  # option/command mismatch
expect_reject "--resume" "$CLI" threshold 3 1 0.5 --resume "$TMP/x"

# Degenerate sweep shapes used to fall through to the usage text (exit 1,
# argument unnamed); they must be rejected like any other malformed argument.
expect_reject "invalid n '0'" "$CLI" sweep 0 1 0 1 4
expect_reject "invalid steps '0'" "$CLI" sweep 3 1 0 1 0
expect_reject "invalid digits" "$CLI" analyze 3 1 0
expect_reject "invalid m" "$CLI" volume 0
expect_reject "volume argument count" "$CLI" volume 2 1/2
# --certify cannot combine with checkpointing (certified rows carry extra
# columns the checkpoint format does not persist).
expect_reject "--certify" "$CLI" sweep 3 1 0 1 4 --certify --checkpoint "$TMP/c.ckpt"

# Engine selection: the value set is closed, the flag is sweep-only, and it
# cannot combine with --certify (the ladder picks its own evaluation tiers).
expect_reject "invalid --engine 'bogus'" "$CLI" sweep 3 1 0 1 4 --engine=bogus
expect_reject "--engine requires a value" "$CLI" sweep 3 1 0 1 4 --engine
expect_reject "--engine is only supported by 'sweep'" "$CLI" threshold 3 1 0.5 --engine=kernel
expect_reject "--engine cannot be combined with --certify" "$CLI" sweep 3 1 0 1 4 --certify --engine=compiled

# Malformed observability options are named, and a bogus DDM_THREADS must be
# rejected up front instead of being silently clamped to one lane.
expect_reject "--trace" "$CLI" threshold 3 1 0.5 --trace
expect_reject "invalid --metrics format 'bogus'" "$CLI" threshold 3 1 0.5 --metrics=bogus
expect_reject "DDM_THREADS" env DDM_THREADS=abc "$CLI" sweep 3 1 0 1 4
expect_reject "DDM_THREADS" env DDM_THREADS=0 "$CLI" sweep 3 1 0 1 4
expect_reject "DDM_THREADS" env DDM_THREADS=1e9 "$CLI" sweep 3 1 0 1 4

# --- certified mode ------------------------------------------------------
cert="$("$CLI" threshold 24 8 3/8 --certify)"
case "$cert" in
  *"tier = interval"*) ;;
  *) fail "certified n=24 run did not escalate to the interval tier: $cert" ;;
esac
case "$cert" in
  *" met"*) ;;
  *) fail "certified n=24 run did not meet tolerance: $cert" ;;
esac

# An unmeetable tolerance must still produce an enclosure but exit 3.
rc=0
"$CLI" volume 2 1 1 3/4 3/4 --certify=0 >/dev/null 2>&1 || rc=$?
# tolerance 0 is satisfiable by the exact tier, so this one must succeed...
[ "$rc" -eq 0 ] || fail "--certify=0 on an exact-capable instance exited $rc"

# --- checkpoint / resume round-trip --------------------------------------
ck="$TMP/sweep.ckpt"
ref="$("$CLI" sweep 3 1 0 1 12)"
full="$("$CLI" sweep 3 1 0 1 12 --checkpoint "$ck")"
[ "$ref" = "$full" ] || fail "checkpointed sweep output differs from plain sweep"

# Simulate a crash: keep the header + 5 rows, leave a torn partial line.
head -n 6 "$ck" > "$ck.tmp"
printf '{"k": 5, "beta":' >> "$ck.tmp"
mv "$ck.tmp" "$ck"
resumed="$("$CLI" sweep 3 1 0 1 12 --resume "$ck")"
[ "$ref" = "$resumed" ] || fail "resumed sweep output is not byte-identical"

# Resuming an already-complete checkpoint recomputes nothing and still
# reproduces the output.
again="$("$CLI" sweep 3 1 0 1 12 --resume "$ck")"
[ "$ref" = "$again" ] || fail "second resume output is not byte-identical"

# A header mismatch (different n) must be rejected, naming both sweeps.
expect_reject "different sweep" "$CLI" sweep 4 1 0 1 12 --resume "$ck"

# --- engine selection ----------------------------------------------------
# Auto must pick the compiled plan on a small symmetric sweep (the certified
# bound is far below the auto tolerance), so its output is byte-identical to
# forcing --engine=compiled; forcing the kernel must also succeed.
auto_out="$("$CLI" sweep 6 2 0 1 24)"
compiled_out="$("$CLI" sweep 6 2 0 1 24 --engine=compiled)"
[ "$auto_out" = "$compiled_out" ] || fail "auto engine did not select the compiled plan at n=6"
"$CLI" sweep 6 2 0 1 24 --engine=kernel >/dev/null || fail "--engine=kernel sweep failed"

# The checkpoint/resume round-trip holds on the compiled path too.
ckc="$TMP/sweep_compiled.ckpt"
refc="$("$CLI" sweep 3 1 0 1 12 --engine=compiled)"
fullc="$("$CLI" sweep 3 1 0 1 12 --engine=compiled --checkpoint "$ckc")"
[ "$refc" = "$fullc" ] || fail "compiled checkpointed sweep output differs from plain compiled sweep"
head -n 6 "$ckc" > "$ckc.tmp"
mv "$ckc.tmp" "$ckc"
resumedc="$("$CLI" sweep 3 1 0 1 12 --engine=compiled --resume "$ckc")"
[ "$refc" = "$resumedc" ] || fail "compiled resumed sweep output is not byte-identical"

echo "cli robustness checks passed"
