#!/usr/bin/env bash
# test_cli_engine_parity.sh — cross-engine agreement at the CLI level,
# registered as the ctest `cli_engine_parity` test (tools/CMakeLists.txt).
#
# Every registered engine sweeps the same grids — the golden β = k/8 grid at
# n = 6, t = 2 and the n = 12, t = 4 acceptance instance — and the p_win
# columns must agree with the exact engine within each engine's stated
# tolerance: bitwise for kernel/batch (vs each other), ~1e-9 for the
# deterministic double paths, and statistical slack for Monte Carlo.
#
# Usage: test_cli_engine_parity.sh /path/to/ddm_cli
set -euo pipefail

CLI="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

command -v python3 >/dev/null 2>&1 || {
  # ctest maps this to SKIP_RETURN_CODE 77.
  echo "SKIP: python3 not available" >&2
  exit 77
}

# p_win column only (certified rows carry extra enclosure columns, auto rows
# an engine field — the value extraction is format-agnostic).
values() {
  sed -n 's/.*"p_win": \([0-9.eE+-]*\).*/\1/p'
}

run_instance() {
  local label="$1" n="$2" t="$3" steps="$4" compiled_tol="$5"
  for eng in exact kernel batch compiled certified mc; do
    "$CLI" sweep "$n" "$t" 0 1 "$steps" --engine="$eng" | values \
      > "$TMP/$label.$eng" || fail "$label: --engine=$eng sweep failed"
  done
  python3 - "$TMP" "$label" "$steps" "$compiled_tol" <<'PY' || fail "$label: cross-engine parity failed"
import sys

tmp, label, steps = sys.argv[1], sys.argv[2], int(sys.argv[3])
compiled_tol = float(sys.argv[4])

def load(engine):
    with open(f"{tmp}/{label}.{engine}") as f:
        vals = [float(line) for line in f if line.strip()]
    assert len(vals) == steps + 1, f"{engine}: {len(vals)} rows, expected {steps + 1}"
    return vals

exact = load("exact")
# Stated tolerances vs exact ground truth; the compiled bound is the plan's
# certificate (instance-dependent — it grows with n, which is exactly why the
# auto policy re-checks it); mc slack is >6 sigma at the CLI default of
# 200000 trials.
tolerances = {"kernel": 1e-9, "batch": 1e-9, "compiled": compiled_tol,
              "certified": 2e-9, "mc": 7e-3}
for engine, tol in tolerances.items():
    for k, (got, want) in enumerate(zip(load(engine), exact)):
        assert abs(got - want) <= tol, \
            f"{label}: engine {engine} point {k}: {got} vs exact {want} (tol {tol})"
# The batch kernel's contract is bitwise equality with the serial kernel.
assert load("kernel") == load("batch"), f"{label}: kernel and batch rows differ bitwise"
print(f"{label}: 6 engines agree on {steps + 1} points")
PY
}

# Compiled tolerances: the n = 6 plan certifies well under 1e-9 (the auto
# policy takes it); the n = 12, t = 4 plan's certificate is wider (~1e-8),
# checked by the unit-level parity suite against the exact reported bound.
run_instance golden_n6 6 2 8 1e-9
run_instance acceptance_n12 12 4 4 1e-7

echo "cli engine parity checks passed"
