#!/usr/bin/env bash
# run_calibrate_check.sh — end-to-end calibration check, registered as the
# opt-in ctest `policy_calibration_check` (configure with -DDDM_BENCH_CHECK=ON;
# `ctest -L bench` then runs it together with the perf-regression gate).
#
# The profile-guided dispatch contract at the CLI surface
# (docs/performance.md §7):
#   * `ddm_cli calibrate` on a tiny grid writes a loadable, checksummed
#     policy table and reports its cells as JSON;
#   * a sweep with the table loaded produces BYTE-IDENTICAL numeric output
#     to the same sweep without it — the model may reroute dispatch only
#     between engines whose values already agree at the request tolerance,
#     so calibration is unobservable in the numbers;
#   * the --metrics exposition proves the model was actually consulted
#     (engine.policy.loaded = 1, engine.policy.consults >= 1) and that an
#     unconfigured run stays on the static rule (loaded = 0);
#   * the table round-trips through both knobs (--policy and DDM_POLICY);
#   * a malformed calibrate invocation exits 2.
#
# Usage: run_calibrate_check.sh /path/to/ddm_cli
set -euo pipefail

CLI="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

policy_metric() {
  # One engine.policy.* value from the --metrics exposition (stderr).
  local name="$1"
  shift
  env "$@" "$CLI" sweep 6 2 0 1 32 --metrics 2>&1 >/dev/null \
    | awk -v name="$name" '$1 == name { print $2 }'
}

TABLE="$TMP/policy.ddmpolicy"

# --- calibrate writes a loadable table ------------------------------------
"$CLI" calibrate 8 --policy="$TABLE" >"$TMP/cells.json" 2>"$TMP/calibrate.err" \
  || fail "calibrate exited non-zero: $(cat "$TMP/calibrate.err")"
[ -s "$TABLE" ] || fail "calibrate wrote no table at $TABLE"
grep -q "^ddmpolicy v" "$TABLE" || fail "table lacks the ddmpolicy magic line"
grep -q "^checksum " "$TABLE" || fail "table lacks its checksum trailer"
grep -q '"engine"' "$TMP/cells.json" || fail "calibrate reported no JSON cells"
grep -q "wrote" "$TMP/calibrate.err" || fail "calibrate did not report its output path"

# --- the table never changes the numbers ----------------------------------
# n=6: the compiled certificate clears the default tolerance, so compiled is
# admissible both ways. n=12, t=4: the certificate (~3e-6) EXCLUDES compiled
# at the default 1e-9 tolerance, so the model ranks only the bitwise-equal
# double kernels. Both sweeps must be byte-identical with the table loaded.
for args in "6 2 0 1 64" "12 4 0 1 32"; do
  # shellcheck disable=SC2086
  ref="$("$CLI" sweep $args)"
  # shellcheck disable=SC2086
  via_flag="$("$CLI" sweep $args --policy="$TABLE")"
  [ "$ref" = "$via_flag" ] || fail "sweep $args differs with --policy loaded"
  # shellcheck disable=SC2086
  via_env="$(env DDM_POLICY="$TABLE" "$CLI" sweep $args)"
  [ "$ref" = "$via_env" ] || fail "sweep $args differs with DDM_POLICY loaded"
done

# --- the model is consulted, and only when configured ---------------------
[ "$(policy_metric engine.policy.loaded)" = "0" ] \
  || fail "engine.policy.loaded is not 0 without a table"
[ "$(policy_metric engine.policy.loaded DDM_POLICY="$TABLE")" = "1" ] \
  || fail "engine.policy.loaded is not 1 under DDM_POLICY"
consults="$(policy_metric engine.policy.consults DDM_POLICY="$TABLE")"
[ -n "$consults" ] && [ "$consults" -ge 1 ] \
  || fail "engine.policy.consults not positive under DDM_POLICY: '$consults'"

# --- malformed invocations exit 2 -----------------------------------------
for bad in "0" "99" "not-a-number"; do
  rc=0
  "$CLI" calibrate "$bad" --policy="$TMP/bad.ddmpolicy" >/dev/null 2>&1 || rc=$?
  [ "$rc" -eq 2 ] || fail "calibrate $bad exited $rc, expected 2"
done
rc=0
env -u DDM_PLAN_STORE "$CLI" calibrate 4 >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || fail "calibrate without an output location exited $rc, expected 2"

echo "calibrate checks passed"
