#!/usr/bin/env bash
# One-command reproduction: configure, build, test, and regenerate every
# figure/table from the paper (outputs land in test_output.txt and
# bench_output.txt at the repository root).
#
# Set DDM_RUN_SANITIZERS=1 to additionally run the robustness test slice
# under AddressSanitizer+UBSan and ThreadSanitizer (scripts/run_sanitizers.sh;
# adds two instrumented builds, so it is opt-in).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    "$b"
  fi
done 2>&1 | tee bench_output.txt

if [ "${DDM_RUN_SANITIZERS:-0}" = "1" ]; then
  scripts/run_sanitizers.sh
fi

echo
echo "Reproduction complete."
echo "  tests:   test_output.txt"
echo "  benches: bench_output.txt  (figures/tables; see EXPERIMENTS.md)"
echo "Try also: build/tools/ddm_cli analyze 3 1 40"
